package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/sift"
)

// testConfig returns a small functional configuration: FP32 RootSIFT with
// tiny feature budgets so real matching is fast.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchSize = 4
	cfg.Streams = 2
	cfg.Precision = gpusim.FP32
	cfg.Algorithm = knn.RootSIFT
	cfg.RefFeatures = 24
	cfg.QueryFeatures = 32
	cfg.Dim = 16
	cfg.HostCacheBytes = 1 << 30
	cfg.Match.MinMatches = 10
	cfg.Match.EdgeMargin = 0
	return cfg
}

// unitFeatures builds a d×n matrix of random unit-norm non-negative
// columns (RootSIFT-like).
func unitFeatures(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for j := 0; j < n; j++ {
		col := m.Col(j)
		var s float64
		for i := range col {
			col[i] = rng.Float32()
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return m
}

// noisy returns a perturbed copy of feats (same keypoint identity with
// capture noise), renormalized to unit columns.
func noisy(rng *rand.Rand, feats *blas.Matrix, sigma float32) *blas.Matrix {
	out := feats.Clone()
	for j := 0; j < out.Cols; j++ {
		col := out.Col(j)
		var s float64
		for i := range col {
			col[i] += (rng.Float32()*2 - 1) * sigma
			if col[i] < 0 {
				col[i] = 0
			}
			s += float64(col[i]) * float64(col[i])
		}
		f := float32(1 / math.Sqrt(s))
		for i := range col {
			col[i] *= f
		}
	}
	return out
}

// queryFor builds a query matrix whose first refCols columns are noisy
// copies of the reference features (so they match distinctively) and the
// rest are random.
func queryFor(rng *rand.Rand, ref *blas.Matrix, n int, sigma float32) *blas.Matrix {
	q := blas.NewMatrix(ref.Rows, n)
	nz := noisy(rng, ref, sigma)
	for j := 0; j < n; j++ {
		if j < ref.Cols {
			copy(q.Col(j), nz.Col(j))
		} else {
			copy(q.Col(j), unitFeatures(rng, ref.Rows, 1).Col(0))
		}
	}
	return q
}

func TestSearchFindsEnrolledReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, 10)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		if err := e.Add(100+i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	q := queryFor(rng, refs[7], 32, 0.02)
	rep, err := e.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 107 {
		t.Fatalf("best = %d (score %d), want 107; ranked %v", rep.BestID, rep.Score, rep.Ranked[:3])
	}
	if !rep.Accepted {
		t.Fatalf("true match rejected with score %d", rep.Score)
	}
	if rep.Compared != 10 {
		t.Fatalf("compared %d, want 10", rep.Compared)
	}
	if rep.ElapsedUS <= 0 || rep.Speed <= 0 {
		t.Fatalf("timing not populated: %+v", rep)
	}
}

func TestSearchRejectsUnknownTexture(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := New(testConfig())
	for i := 0; i < 8; i++ {
		e.Add(i, unitFeatures(rng, 16, 24), nil)
	}
	q := unitFeatures(rng, 16, 32) // unrelated query
	rep, err := e.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatalf("random query accepted with score %d against ref %d", rep.Score, rep.BestID)
	}
}

func TestPartialBatchIsSearchable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, _ := New(testConfig()) // batch size 4
	ref := unitFeatures(rng, 16, 24)
	e.Add(42, ref, nil) // single pending reference
	rep, err := e.Search(queryFor(rng, ref, 32, 0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 42 || !rep.Accepted {
		t.Fatalf("pending reference not found: %+v", rep)
	}
}

func TestRemoveHidesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, _ := New(testConfig())
	ref := unitFeatures(rng, 16, 24)
	e.Add(1, ref, nil)
	e.Add(2, unitFeatures(rng, 16, 24), nil)
	if !e.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if e.Remove(1) {
		t.Fatal("double Remove should report false")
	}
	rep, err := e.Search(queryFor(rng, ref, 32, 0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID == 1 {
		t.Fatal("removed reference still returned")
	}
}

func TestUpdateReplacesFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e, _ := New(testConfig())
	oldRef := unitFeatures(rng, 16, 24)
	newRef := unitFeatures(rng, 16, 24)
	e.Add(9, oldRef, nil)
	if err := e.Update(9, newRef, nil); err != nil {
		t.Fatal(err)
	}
	// The old features must no longer identify id 9...
	rep, _ := e.Search(queryFor(rng, oldRef, 32, 0.02), nil)
	if rep.Accepted && rep.BestID == 9 {
		t.Fatal("stale features still matched after Update")
	}
	// ...but the new ones must.
	rep, _ = e.Search(queryFor(rng, newRef, 32, 0.02), nil)
	if rep.BestID != 9 || !rep.Accepted {
		t.Fatalf("updated features not found: %+v", rep)
	}
}

func TestDuplicateAddRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e, _ := New(testConfig())
	f := unitFeatures(rng, 16, 24)
	if err := e.Add(5, f, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(5, f, nil); err == nil {
		t.Fatal("duplicate Add must error")
	}
}

func TestShapeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, _ := New(testConfig())
	if err := e.Add(1, unitFeatures(rng, 16, 99), nil); err == nil {
		t.Fatal("wrong feature count accepted")
	}
	e.Add(2, unitFeatures(rng, 16, 24), nil)
	if _, err := e.Search(unitFeatures(rng, 8, 32), nil); err == nil {
		t.Fatal("wrong query dim accepted")
	}
}

func TestPhantomSearchSpeedAtPaperScale(t *testing.T) {
	// Table 3 check at engine level: batch 1024, all refs GPU-resident,
	// FP16 RootSIFT, m=n=768 — speed should be in the ~45k img/s regime.
	cfg := DefaultConfig()
	cfg.BatchSize = 1024
	cfg.Streams = 1
	cfg.RefFeatures = 768
	cfg.QueryFeatures = 768
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPhantom(0, 8*1024); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Search(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compared != 8*1024 {
		t.Fatalf("compared %d", rep.Compared)
	}
	if rep.Speed < 35000 || rep.Speed > 60000 {
		t.Fatalf("GPU-resident batched speed %.0f img/s, want ~45k", rep.Speed)
	}
	t.Logf("phantom speed %.0f img/s (paper 45,539)", rep.Speed)
}

func TestHybridCacheDemotionDuringAdds(t *testing.T) {
	// Constrain the GPU cache so batches demote to host FIFO.
	cfg := testConfig()
	perBatch := int64(cfg.BatchSize) * int64(cfg.RefFeatures) * int64(cfg.Dim) * 4
	cfg.GPUCacheBytes = perBatch * 2 // room for 2 batches on GPU
	rng := rand.New(rand.NewSource(8))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, 16) // 4 batches of 4
	for i := range refs {
		refs[i] = unitFeatures(rng, cfg.Dim, cfg.RefFeatures)
		if err := e.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Cache.GPUItems != 2 || st.Cache.HostItems != 2 {
		t.Fatalf("cache split %d GPU / %d host, want 2/2", st.Cache.GPUItems, st.Cache.HostItems)
	}
	// Search still finds references in host-resident (oldest) batches.
	rep, err := e.Search(queryFor(rng, refs[0], cfg.QueryFeatures, 0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 0 || !rep.Accepted {
		t.Fatalf("host-resident reference not found: best %d score %d", rep.BestID, rep.Score)
	}
	// The search must have streamed the host batches over PCIe.
	prof := e.Device().Profile()
	if prof["copy/h2d"].Count < 2 {
		t.Fatalf("expected H2D streaming for host batches, profile: %v", prof)
	}
}

func TestHybridSlowerThanResident(t *testing.T) {
	// Table 5's shape: all-host streaming search is slower than
	// GPU-resident search, and pinned memory beats pageable.
	speeds := map[string]float64{}
	for name, setup := range map[string]struct {
		gpuBudget int64
		pinned    bool
	}{
		"gpu":      {0, true},
		"pinned":   {1, true}, // 1-byte GPU budget would reject batches; use small budget below
		"pageable": {1, false},
	} {
		cfg := DefaultConfig()
		cfg.BatchSize = 1024
		cfg.Streams = 1
		cfg.RefFeatures = 768
		cfg.QueryFeatures = 768
		cfg.PinnedHost = setup.pinned
		if setup.gpuBudget != 0 {
			// Just one batch fits: all but the newest batch lives on host.
			cfg.GPUCacheBytes = int64(cfg.BatchSize)*int64(cfg.RefFeatures)*int64(cfg.Dim)*2 + 1
		}
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddPhantom(0, 8*1024); err != nil {
			t.Fatal(err)
		}
		rep, err := e.Search(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		speeds[name] = rep.Speed
	}
	t.Logf("speeds: %+v", speeds)
	if !(speeds["gpu"] > speeds["pinned"] && speeds["pinned"] > speeds["pageable"]) {
		t.Fatalf("expected gpu > pinned > pageable, got %+v", speeds)
	}
}

func TestMoreStreamsFasterWhenStreaming(t *testing.T) {
	// Table 6's shape: with host-resident references, more streams recover
	// throughput lost to the PCIe bottleneck.
	speed := func(streams int) float64 {
		cfg := DefaultConfig()
		cfg.Spec = gpusim.WithJitter(gpusim.TeslaP100(), 0.45, 7)
		cfg.BatchSize = 512
		cfg.Streams = streams
		cfg.RefFeatures = 768
		cfg.QueryFeatures = 768
		cfg.GPUCacheBytes = int64(cfg.BatchSize)*int64(cfg.RefFeatures)*int64(cfg.Dim)*2 + 1
		e, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.AddPhantom(0, 16*512); err != nil {
			t.Fatal(err)
		}
		rep, err := e.Search(nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Speed
	}
	s1, s2, s4, s8 := speed(1), speed(2), speed(4), speed(8)
	t.Logf("streams 1: %.0f, 2: %.0f, 4: %.0f, 8: %.0f img/s", s1, s2, s4, s8)
	// More streams must help until the PCIe bound is reached. Our
	// simulator's overlap is cleaner than the paper's cloud VMs, so it
	// saturates around 4 streams (the paper needed 8); see EXPERIMENTS.md.
	if !(s2 > s1*1.2 && s4 > s2*1.02 && s8 >= s4*0.98) {
		t.Fatalf("stream scaling shape wrong: %f %f %f %f", s1, s2, s4, s8)
	}
}

func TestStatsCapacity(t *testing.T) {
	cfg := DefaultConfig() // 384 features FP16 RootSIFT, 64 GB host
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.BytesPerRef != 384*128*2 {
		t.Fatalf("BytesPerRef = %d", st.BytesPerRef)
	}
	// Sec. 8: one container with ~76 GB hybrid cache stores ~0.77M
	// 384-feature FP16 matrices.
	if st.CapacityImages < 700_000 || st.CapacityImages > 900_000 {
		t.Fatalf("capacity %d images", st.CapacityImages)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.BatchSize = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero batch size accepted")
	}
	bad = testConfig()
	bad.Streams = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative streams accepted")
	}
	bad = testConfig()
	bad.Dim = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero dim accepted")
	}
}

func TestKeypointsFlowThroughGeometricVerification(t *testing.T) {
	cfg := testConfig()
	cfg.KeepKeypoints = true
	cfg.Match.Geometric = true
	cfg.Match.MinMatches = 4
	cfg.Match.RANSACTol = 6
	rng := rand.New(rand.NewSource(9))
	e, _ := New(cfg)

	ref := unitFeatures(rng, 16, 24)
	refKps := make([]sift.Keypoint, 24)
	for i := range refKps {
		refKps[i] = sift.Keypoint{X: rng.Float64() * 200, Y: rng.Float64() * 200}
	}
	e.Add(3, ref, refKps)

	// Query: matching features at translated keypoint positions.
	q := queryFor(rng, ref, 32, 0.02)
	queryKps := make([]sift.Keypoint, 32)
	for i := range queryKps {
		if i < 24 {
			queryKps[i] = sift.Keypoint{X: refKps[i].X + 5, Y: refKps[i].Y - 3}
		} else {
			queryKps[i] = sift.Keypoint{X: rng.Float64() * 200, Y: rng.Float64() * 200}
		}
	}
	rep, err := e.Search(q, queryKps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 3 || !rep.Accepted {
		t.Fatalf("geometric search failed: %+v", rep)
	}
}

func TestSearchBatchMatchesSingleSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	e, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*blas.Matrix, 8)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		e.Add(i, refs[i], nil)
	}
	queries := []*blas.Matrix{
		queryFor(rng, refs[2], 32, 0.02),
		queryFor(rng, refs[6], 32, 0.02),
		unitFeatures(rng, 16, 32), // unrelated
	}
	br, err := e.SearchBatch(queries, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Reports) != 3 {
		t.Fatalf("got %d reports", len(br.Reports))
	}
	for qi, q := range queries {
		single, err := e.Search(q, nil)
		if err != nil {
			t.Fatal(err)
		}
		got := br.Reports[qi]
		if got.BestID != single.BestID || got.Accepted != single.Accepted || got.Score != single.Score {
			t.Fatalf("query %d: batch (%d,%d,%v) vs single (%d,%d,%v)",
				qi, got.BestID, got.Score, got.Accepted, single.BestID, single.Score, single.Accepted)
		}
	}
	if br.Reports[0].BestID != 2 || br.Reports[1].BestID != 6 || br.Reports[2].Accepted {
		t.Fatalf("batch results wrong: %v %v %v", br.Reports[0], br.Reports[1], br.Reports[2])
	}
	if br.Compared != 3*8 || br.Throughput <= 0 {
		t.Fatalf("batch metrics wrong: %+v", br)
	}
}

func TestSearchBatchPadsShortQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	e, _ := New(testConfig())
	ref := unitFeatures(rng, 16, 24)
	e.Add(1, ref, nil)
	// A query with fewer features than the budget still works.
	short := queryFor(rng, ref, 28, 0.02) // budget is 32
	br, err := e.SearchBatch([]*blas.Matrix{short}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if br.Reports[0].BestID != 1 || !br.Reports[0].Accepted {
		t.Fatalf("padded query failed: %+v", br.Reports[0])
	}
}

func TestSearchBatchPhantomThroughput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 256
	cfg.Streams = 1
	cfg.RefFeatures = 768
	cfg.QueryFeatures = 768
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddPhantom(0, 1024); err != nil {
		t.Fatal(err)
	}
	single, err := e.Search(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	br, err := e.SearchBatchPhantom(8)
	if err != nil {
		t.Fatal(err)
	}
	if br.Throughput <= single.Speed {
		t.Fatalf("query batching should raise throughput: %.0f vs %.0f", br.Throughput, single.Speed)
	}
	if br.ElapsedUS <= single.ElapsedUS {
		t.Fatalf("query batching should raise per-query latency: %.0f vs %.0f", br.ElapsedUS, single.ElapsedUS)
	}
	t.Logf("single: %.0f cmp/s, batch-8: %.0f cmp/s at %.1fx latency",
		single.Speed, br.Throughput, br.ElapsedUS/single.ElapsedUS)
}

func TestSearchBatchRequiresRootSIFT(t *testing.T) {
	cfg := testConfig()
	cfg.Algorithm = knn.Eq1Top2
	e, _ := New(cfg)
	if _, err := e.SearchBatch(make([]*blas.Matrix, 2), nil); err == nil {
		t.Fatal("non-RootSIFT batch search accepted")
	}
	cfg = testConfig()
	e, _ = New(cfg)
	if _, err := e.SearchBatch(nil, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestCompactReclaimsDeadSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	cfg := testConfig()
	e, _ := New(cfg)
	refs := make([]*blas.Matrix, 12) // 3 batches of 4
	for i := range refs {
		refs[i] = unitFeatures(rng, cfg.Dim, cfg.RefFeatures)
		if err := e.Add(i, refs[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{1, 2, 5, 9, 10} {
		e.Remove(id)
	}
	before := e.Stats()
	reclaimed, err := e.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if reclaimed != 5 {
		t.Fatalf("reclaimed %d slots, want 5", reclaimed)
	}
	after := e.Stats()
	if after.Cache.GPUUsed+after.Cache.HostUsed >= before.Cache.GPUUsed+before.Cache.HostUsed {
		t.Fatalf("compaction did not shrink the cache: %d -> %d",
			before.Cache.GPUUsed+before.Cache.HostUsed, after.Cache.GPUUsed+after.Cache.HostUsed)
	}
	if after.References != 7 {
		t.Fatalf("references after compact = %d", after.References)
	}
	// Every surviving reference still searchable.
	for _, id := range []int{0, 3, 4, 6, 7, 8, 11} {
		rep, err := e.Search(queryFor(rng, refs[id], cfg.QueryFeatures, 0.02), nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.BestID != id || !rep.Accepted {
			t.Fatalf("reference %d lost after compaction: %+v", id, rep)
		}
	}
	// Removed references stay gone.
	rep, _ := e.Search(queryFor(rng, refs[5], cfg.QueryFeatures, 0.02), nil)
	if rep.Accepted && rep.BestID == 5 {
		t.Fatal("removed reference resurrected by compaction")
	}
}

func TestCompactNoOpWhenClean(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	e, _ := New(testConfig())
	e.Add(1, unitFeatures(rng, 16, 24), nil)
	n, err := e.Compact()
	if err != nil || n != 0 {
		t.Fatalf("clean compact = %d, %v", n, err)
	}
}

func TestCompactFP16(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := testConfig()
	cfg.Precision = gpusim.FP16
	e, _ := New(cfg)
	refs := make([]*blas.Matrix, 8)
	for i := range refs {
		refs[i] = unitFeatures(rng, cfg.Dim, cfg.RefFeatures)
		e.Add(i, refs[i], nil)
	}
	e.Remove(3)
	if _, err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	rep, err := e.Search(queryFor(rng, refs[6], cfg.QueryFeatures, 0.02), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BestID != 6 || !rep.Accepted {
		t.Fatalf("FP16 compaction lost reference 6: %+v", rep)
	}
}

func TestCompactRejectsPhantom(t *testing.T) {
	cfg := testConfig()
	e, _ := New(cfg)
	e.AddPhantom(0, 8)
	if _, err := e.Compact(); err == nil {
		t.Fatal("phantom compaction should error")
	}
}

func TestConcurrentSearches(t *testing.T) {
	// The engine must serve concurrent searches safely (the REST tier
	// fans requests into shared engines).
	rng := rand.New(rand.NewSource(60))
	e, _ := New(testConfig())
	refs := make([]*blas.Matrix, 8)
	for i := range refs {
		refs[i] = unitFeatures(rng, 16, 24)
		e.Add(i, refs[i], nil)
	}
	queries := make([]*blas.Matrix, 8)
	for i := range queries {
		queries[i] = queryFor(rand.New(rand.NewSource(int64(i))), refs[i], 32, 0.02)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries))
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q *blas.Matrix) {
			defer wg.Done()
			rep, err := e.Search(q, nil)
			if err != nil {
				errs <- err
				return
			}
			if rep.BestID != i || !rep.Accepted {
				errs <- fmt.Errorf("query %d: got %d (accepted %v)", i, rep.BestID, rep.Accepted)
			}
		}(i, q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestNewFailsWhenWorkspaceExceedsDevice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchSize = 4096
	cfg.Streams = 16
	cfg.RefFeatures = 768
	cfg.QueryFeatures = 768
	// 16 streams x (4096*768*768*2 + staging) bytes far exceeds 16 GB.
	if _, err := New(cfg); err == nil {
		t.Fatal("oversized workspace accepted")
	}
}

func TestAddFailsWhenCacheFull(t *testing.T) {
	cfg := testConfig()
	perBatch := int64(cfg.BatchSize) * int64(cfg.RefFeatures) * int64(cfg.Dim) * 4
	cfg.GPUCacheBytes = perBatch + 1
	cfg.HostCacheBytes = perBatch + 1 // room for exactly two batches total
	rng := rand.New(rand.NewSource(70))
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	added := 0
	for i := 0; i < 4*cfg.BatchSize; i++ {
		lastErr = e.Add(i, unitFeatures(rng, cfg.Dim, cfg.RefFeatures), nil)
		if lastErr != nil {
			break
		}
		added++
	}
	if lastErr == nil {
		t.Fatal("cache overflow not reported")
	}
	if added < 2*cfg.BatchSize-1 {
		t.Fatalf("only %d adds before overflow; two batches should fit", added)
	}
	// The engine stays usable after the failed add.
	if _, err := e.Search(unitFeatures(rng, cfg.Dim, cfg.QueryFeatures), nil); err != nil {
		t.Fatalf("engine broken after cache overflow: %v", err)
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	e, _ := New(testConfig())
	rep, err := e.Search(unitFeatures(rng, 16, 32), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted || rep.BestID != -1 || rep.Compared != 0 {
		t.Fatalf("empty index search = %+v", rep)
	}
}
