package engine

import (
	"fmt"
	"sort"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/sift"
)

// Export visits every live reference in enrollment order, passing its
// public id, feature matrix (widened from FP16 with the storage scale
// divided out, so it is in original descriptor units), keypoints (nil
// unless KeepKeypoints), and — when pruning is enabled — the reference's
// binary code panel slice, so a snapshot can persist the exact enrolled
// codes instead of re-deriving them from re-quantized features. It is the
// basis for snapshot persistence. Engines holding phantom references
// cannot be exported.
func (e *Engine) Export(visit func(id int, feats *blas.Matrix, kps []sift.Keypoint, codes []binq.Code) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sealLocked(); err != nil {
		return err
	}
	type entry struct {
		uid    int
		public int
		feats  *blas.Matrix
		codes  []binq.Code
	}
	var all []entry
	for _, it := range e.hybrid.Items() {
		sb := it.Payload.(*sealedBatch)
		rb := sb.rb
		if rb.Phantom() {
			return fmt.Errorf("engine: cannot export phantom references")
		}
		for slot, uid := range rb.IDs {
			public, ok := e.uidToPublic[uid]
			if !ok {
				continue // tombstoned
			}
			var feats *blas.Matrix
			if rb.F32 != nil {
				feats = rb.F32.Slice(slot*rb.M, (slot+1)*rb.M).Clone()
			} else {
				feats = rb.F16.Slice(slot*rb.M, (slot+1)*rb.M).Float32()
				if rb.Scale != 0 && rb.Scale != 1 {
					inv := 1 / rb.Scale
					for i := range feats.Data {
						feats.Data[i] *= inv
					}
				}
			}
			var codes []binq.Code
			if panel := rb.Codes(); panel != nil {
				codes = append(codes, panel[slot*rb.M:(slot+1)*rb.M]...)
			}
			all = append(all, entry{uid: uid, public: public, feats: feats, codes: codes})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].uid < all[j].uid })
	for _, en := range all {
		var kps []sift.Keypoint
		if meta := e.refs[en.public]; meta != nil {
			kps = meta.kps
		}
		if err := visit(en.public, en.feats, kps, en.codes); err != nil {
			return err
		}
	}
	return nil
}
