package engine

import (
	"fmt"

	"texid/internal/blas"
	"texid/internal/cache"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
)

// Report is the outcome of one one-to-many search.
type Report struct {
	// BestID is the highest-scoring reference (-1 if the index is empty);
	// Accepted says whether it cleared the MinMatches decision threshold.
	BestID   int
	Score    int
	Accepted bool
	// Ranked holds every scored candidate in descending score order
	// (omitted for phantom searches).
	Ranked []match.SearchResult
	// Compared is the number of reference images matched (with pruning
	// enabled, the candidates that survived the prefilter).
	Compared int
	// Scanned is the number of reference images the binary prefilter
	// scanned (zero when pruning is disabled).
	Scanned int
	// ElapsedUS is the simulated wall time of the search and Speed the
	// resulting throughput in image comparisons per second.
	ElapsedUS float64
	Speed     float64
}

// Search runs a one-to-many search of the query features (Dim×QueryFeatures)
// against every cached reference. queryKps may be nil unless geometric
// verification is enabled. Cached batches are scattered round-robin across
// the engine's streams; host-resident batches stream over PCIe, overlapping
// with other streams' kernels.
//
//texlint:hotpath
func (e *Engine) Search(queryFeats *blas.Matrix, queryKps []sift.Keypoint) (*Report, error) {
	// One batch pass at a time over the shared streams and scratch; the
	// index itself is only read-locked, so enrollment blocks searching
	// (and vice versa) no longer than one in-flight pass.
	e.execMu.Lock()
	defer e.execMu.Unlock()
	if err := e.sealPending(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	var q *knn.Query
	var err error
	phantom := queryFeats == nil
	if phantom {
		q, err = knn.PhantomQuery(e.dev, e.cfg.QueryFeatures, e.cfg.Dim)
	} else {
		if queryFeats.Rows != e.cfg.Dim {
			return nil, fmt.Errorf("engine: query dim %d, want %d", queryFeats.Rows, e.cfg.Dim)
		}
		q, err = knn.NewQueryScratch(e.dev, queryFeats, e.cfg.Precision, e.cfg.Scale, &e.qscratch)
	}
	if err != nil {
		return nil, err
	}
	defer q.Free()

	items := e.hybrid.AppendItems(e.itemsBuf[:0])
	e.itemsBuf = items
	opts := knn.Options{
		Algorithm: e.cfg.Algorithm,
		Precision: e.cfg.Precision,
		Scale:     e.cfg.Scale,
		Accum:     e.cfg.Accum,
	}

	report := &Report{BestID: -1}
	if !phantom {
		// Ranked escapes to the caller, so it is the one per-search
		// allocation; size it for every reference up front.
		report.Ranked = make([]match.SearchResult, 0, len(e.refs))
	}

	start := e.dev.Synchronize()
	if e.cfg.PruneC > 0 {
		// Two-phase path: Hamming prefilter scan, then exact rerank of
		// the surviving candidates only.
		if err := e.prunedPass(q, queryFeats, queryKps, opts, items, report, phantom); err != nil {
			return nil, err
		}
	} else {
		// Round-robin issue across streams: chunk r of stream s is batch
		// items[r*S+s]. Interleaving approximates concurrent host threads
		// while keeping the simulation deterministic. Each batch's results
		// alias e.scratch, so they are scored immediately — before the next
		// issue reuses the buffers (stream closures run eagerly at enqueue).
		S := len(e.streams)
		for base := 0; base < len(items); base += S {
			for s := 0; s < S && base+s < len(items); s++ {
				it := items[base+s]
				sb := it.Payload.(*sealedBatch)
				stream := e.streams[s]
				if it.Loc == cache.OnHost {
					// Stream the batch into this stream's staging buffer.
					stream.CopyH2D(sb.rb.Bytes(), e.cfg.PinnedHost, nil)
				}
				res, err := knn.MatchBatchScratch(stream, sb.rb, q, opts, &e.scratch)
				if err != nil {
					return nil, err
				}
				report.Compared += sb.rb.Count()
				if phantom {
					continue
				}
				// Score every live reference in this batch.
				for _, pair := range res {
					public, live := e.uidToPublic[pair.RefID]
					if !live {
						continue
					}
					meta := e.refs[public]
					score := match.PairScore(pair, meta.kps, queryKps, e.cfg.Match)
					report.Ranked = append(report.Ranked, match.SearchResult{RefID: public, Score: score})
				}
			}
		}
	}
	elapsed := e.dev.Synchronize() - start
	e.searches.Add(1)

	report.ElapsedUS = elapsed
	if elapsed > 0 {
		report.Speed = float64(report.Compared) / (elapsed * 1e-6)
	}
	if phantom {
		return report, nil
	}

	top, ok := match.Identify(report.Ranked, e.cfg.Match)
	report.Ranked = match.RankResults(report.Ranked)
	report.BestID = top.RefID
	report.Score = top.Score
	report.Accepted = ok
	return report, nil
}

// Stats summarizes the engine state.
type Stats struct {
	References int
	Batches    int
	Cache      cache.Stats
	// CapacityImages is the total number of references the hybrid cache
	// can hold at the engine's footprint per reference.
	CapacityImages int64
	// BytesPerRef is the cache footprint of one reference image.
	BytesPerRef int64
	Searches    int
	WorkspaceGB float64
}

// Stats returns current occupancy and capacity figures.
func (e *Engine) Stats() Stats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	perRef := int64(e.cfg.RefFeatures) * int64(e.cfg.Dim) * int64(e.cfg.Precision.ElemBytes())
	if e.cfg.Algorithm != knn.RootSIFT {
		perRef += int64(e.cfg.RefFeatures) * 4 // norm vector
	}
	cs := e.hybrid.Stats()
	return Stats{
		References:     len(e.refs),
		Batches:        cs.GPUItems + cs.HostItems,
		Cache:          cs,
		CapacityImages: e.hybrid.CapacityImages(perRef),
		BytesPerRef:    perRef,
		Searches:       int(e.searches.Load()),
		WorkspaceGB:    float64(e.workspace) / (1 << 30),
	}
}
