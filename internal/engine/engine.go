// Package engine implements the per-GPU texture search engine: it owns one
// simulated device, keeps reference feature matrices in the hybrid
// GPU/host cache in sealed batches (Sec. 5's batching + Sec. 6's hybrid
// cache), and answers one-to-many searches by scattering the cached batches
// across multiple CUDA streams whose host-to-device copies overlap with
// matching kernels (Sec. 6.2). It is the building block the distributed
// system replicates across 14 GPU containers (Sec. 8).
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/cache"
	"texid/internal/gpusim"
	"texid/internal/knn"
	"texid/internal/match"
	"texid/internal/sift"
)

// Config configures a search engine.
type Config struct {
	// Spec is the simulated device model.
	Spec gpusim.DeviceSpec
	// BatchSize is the number of reference feature matrices per sealed
	// batch (the GEMM batching factor and the cache swap granularity).
	BatchSize int
	// Streams is the number of CUDA streams (= host CPU threads).
	Streams int
	// Precision and Scale select the feature storage format.
	Precision gpusim.Precision
	Scale     float32
	// Accum is the FP16 GEMM accumulator mode.
	Accum blas.AccumMode
	// Algorithm is the 2-NN variant (RootSIFT is the production path).
	Algorithm knn.Algorithm
	// RefFeatures (m) and QueryFeatures (n) are the asymmetric feature
	// budgets; Dim is the descriptor dimensionality.
	RefFeatures   int
	QueryFeatures int
	Dim           int
	// GPUCacheBytes is the device-memory budget for reference batches.
	// Zero derives it automatically from what remains after the runtime
	// overhead and per-stream workspaces.
	GPUCacheBytes int64
	// HostCacheBytes is the host-memory budget for the second cache level
	// (the paper reserves 64 GB per container).
	HostCacheBytes int64
	// PinnedHost uses pinned host memory for H2D streaming.
	PinnedHost bool
	// Match configures the post-processing decision pipeline.
	Match match.Config
	// KeepKeypoints stores reference keypoints host-side for geometric
	// verification.
	KeepKeypoints bool
	// PruneC enables the binary Hamming prefilter: every search first scans
	// packed 128-bit codes of all references and only the top-PruneC
	// candidates go through the exact GEMM rerank. Zero disables pruning
	// (bitwise-identical to the unpruned engine). Requires the RootSIFT
	// algorithm and Dim <= binq.MaxDim.
	PruneC int
	// PruneProbes caps how many query descriptors are encoded as scan
	// probes (the first columns, which SIFT extraction orders by response).
	// Zero means the default of 64.
	PruneProbes int
}

// DefaultConfig returns the paper's production configuration on a P100:
// RootSIFT + FP16, batch 256, 8 streams, asymmetric 384/768 features.
func DefaultConfig() Config {
	return Config{
		Spec:           gpusim.TeslaP100(),
		BatchSize:      256,
		Streams:        8,
		Precision:      gpusim.FP16,
		Scale:          1, // RootSIFT features are unit-norm; no scaling needed
		Accum:          blas.AccumFP16,
		Algorithm:      knn.RootSIFT,
		RefFeatures:    384,
		QueryFeatures:  768,
		Dim:            sift.DescriptorDim,
		HostCacheBytes: 64 << 30,
		PinnedHost:     true,
		Match:          match.DefaultConfig(),
	}
}

// sealedBatch is one cache entry: a RefBatch plus host-side metadata.
type sealedBatch struct {
	rb       *knn.RefBatch
	resident bool // device memory currently held
}

// refMeta is the host-side record of one enrolled reference image. Batches
// index references by an internal uid so that Update can re-enroll the same
// public id without resurrecting the superseded batch slot.
type refMeta struct {
	uid int
	kps []sift.Keypoint
}

// Engine is a single-GPU texture search engine. Methods are safe for
// concurrent use.
//
// Locking is two-level so that searches never hold the index write lock
// during compute (the GEMM/top-2 phase):
//
//   - mu (RWMutex) guards the index state: the hybrid cache layout, the
//     id maps, and the pending (unsealed) enrollment buffers. Searches
//     hold only the read lock while matching, so enrollment on one shard
//     no longer blocks searches on another through the cluster path;
//     Add/Remove/Update/Compact/Export take the write lock and therefore
//     wait for at most one in-flight batch pass.
//   - execMu serializes the execution resources that cannot be shared:
//     the stream set, the reusable scratch buffers, and the device-clock
//     interval measurement (start/end Synchronize must not interleave
//     between searches or the virtual latency attribution breaks).
//
// Lock order is execMu before mu; no path acquires execMu while holding
// mu. Searches cannot drop mu entirely during compute: batch payloads and
// the uid maps are read throughout scoring, and a concurrent Add could
// demote (free) a device-resident batch mid-match.
type Engine struct {
	cfg Config
	dev *gpusim.Device

	mu sync.RWMutex
	//texlint:guards mu
	hybrid *cache.Hybrid
	//texlint:guards mu
	refs map[int]*refMeta // public id -> meta
	//texlint:guards mu
	uidToPublic map[int]int // internal uid -> public id
	//texlint:guards mu
	nextUID int
	//texlint:guards mu
	nextBatchID int
	//texlint:guards mu
	pendingUIDs []int
	//texlint:guards mu
	pendingMats []*blas.Matrix
	// pendingCodes parallels pendingMats: non-nil entries carry pre-encoded
	// binary codes (snapshot restore); nil entries are encoded at seal time.
	//texlint:guards mu
	pendingCodes [][]binq.Code
	// thresh is the per-dimension binarization threshold vector, learned
	// from the first sealed batch (or restored from a snapshot) and fixed
	// for the life of the index so every enrolled code is comparable.
	//texlint:guards mu
	thresh    binq.Thresholds
	workspace int64
	searches  atomic.Int64

	// execMu serializes one batch pass at a time over the streams and the
	// reusable host-side working sets: the match kernels' distance matrix
	// and top-2 slabs plus the query staging buffers. Threading these
	// through the search paths makes steady-state Search allocation-free
	// on the host hot path (Report.Ranked is the one fresh allocation,
	// since it escapes to the caller).
	execMu sync.Mutex
	//texlint:guards execMu
	streams []*gpusim.Stream
	//texlint:guards execMu
	scratch knn.Scratch
	//texlint:guards execMu
	qscratch knn.QueryScratch
	//texlint:guards execMu
	itemsBuf []*cache.Item
	//texlint:guards execMu
	prune pruneScratch
}

// New creates an engine, allocating per-stream device workspace (the
// distance matrix plus staging buffers that Table 6 reports as "extra GPU
// memory").
func New(cfg Config) (*Engine, error) {
	if cfg.BatchSize <= 0 || cfg.Streams <= 0 {
		return nil, fmt.Errorf("engine: batch size %d and streams %d must be positive", cfg.BatchSize, cfg.Streams)
	}
	if cfg.RefFeatures <= 0 || cfg.QueryFeatures <= 0 || cfg.Dim <= 0 {
		return nil, fmt.Errorf("engine: feature shape %d/%d/%d must be positive", cfg.RefFeatures, cfg.QueryFeatures, cfg.Dim)
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if cfg.PruneC > 0 {
		if cfg.Algorithm != knn.RootSIFT {
			return nil, fmt.Errorf("engine: candidate pruning requires the RootSIFT algorithm")
		}
		if cfg.Dim > binq.MaxDim {
			return nil, fmt.Errorf("engine: candidate pruning supports dim <= %d, got %d", binq.MaxDim, cfg.Dim)
		}
		if cfg.PruneProbes <= 0 {
			cfg.PruneProbes = 64
		}
	}
	dev := gpusim.NewDevice(cfg.Spec)

	// Per-stream workspace: the (B·m)×n distance matrix plus a staging
	// buffer for one in-flight reference chunk.
	perStream := knn.WorkspaceBytes(cfg.BatchSize, cfg.RefFeatures, cfg.QueryFeatures, cfg.Precision) +
		int64(cfg.BatchSize)*int64(cfg.RefFeatures)*int64(cfg.Dim)*int64(cfg.Precision.ElemBytes())
	workspace := perStream * int64(cfg.Streams)
	if err := dev.Alloc(workspace); err != nil {
		return nil, fmt.Errorf("engine: allocating stream workspace: %w", err)
	}

	gpuBudget := cfg.GPUCacheBytes
	if gpuBudget == 0 {
		gpuBudget = dev.FreeBytes() - (256 << 20) // safety margin for queries
		if cfg.PruneC > 0 {
			// Binary codes stay device-resident even for host-cached
			// batches (that is what makes the whole-index scan possible),
			// so the automatic feature-cache budget leaves a proportional
			// slice for them: 16 bytes/descriptor against the feature
			// footprint. Deployments holding far more host- than
			// GPU-resident references should set GPUCacheBytes explicitly.
			refB := int64(cfg.Dim) * int64(cfg.Precision.ElemBytes())
			gpuBudget = gpuBudget * refB / (refB + binq.Bytes*4)
		}
	}
	if gpuBudget <= 0 {
		dev.Free(workspace)
		return nil, fmt.Errorf("engine: no device memory left for the reference cache")
	}

	e := &Engine{
		cfg:         cfg,
		dev:         dev,
		refs:        make(map[int]*refMeta),
		uidToPublic: make(map[int]int),
		workspace:   workspace,
	}
	// Demotion releases the batch's device bytes; the payload stays in Go
	// memory, which doubles as the host copy.
	e.hybrid = cache.New(gpuBudget, cfg.HostCacheBytes, func(it *cache.Item) {
		sb := it.Payload.(*sealedBatch)
		if sb.resident {
			sb.rb.Free()
			sb.resident = false
		}
	})
	for i := 0; i < cfg.Streams; i++ {
		e.streams = append(e.streams, dev.NewStream())
	}
	return e, nil
}

// Device exposes the simulated device (profiling, clock).
func (e *Engine) Device() *gpusim.Device { return e.dev }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// WorkspaceBytes returns the total per-stream device workspace held by the
// engine.
func (e *Engine) WorkspaceBytes() int64 { return e.workspace }

// Add enrolls a reference image's features under the given id. Features
// must be Dim×RefFeatures. Keypoints may be nil unless geometric
// verification is enabled. Batches seal automatically when BatchSize
// references accumulate.
func (e *Engine) Add(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	return e.AddEncoded(id, feats, kps, nil)
}

// AddEncoded is Add with an optional pre-built binary code panel (one code
// per feature column), used by snapshot restore so persisted codes survive
// round-trips bit-for-bit instead of being re-derived from re-quantized
// features. A nil codes slice encodes at seal time from the engine's
// thresholds; non-nil requires pruning to be enabled.
func (e *Engine) AddEncoded(id int, feats *blas.Matrix, kps []sift.Keypoint, codes []binq.Code) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.refs[id]; dup {
		return fmt.Errorf("engine: duplicate reference id %d", id)
	}
	if feats.Rows != e.cfg.Dim || feats.Cols != e.cfg.RefFeatures {
		return fmt.Errorf("engine: features are %dx%d, want %dx%d",
			feats.Rows, feats.Cols, e.cfg.Dim, e.cfg.RefFeatures)
	}
	if codes != nil {
		if e.cfg.PruneC <= 0 {
			return fmt.Errorf("engine: pre-encoded codes require pruning (PruneC > 0)")
		}
		if len(codes) != e.cfg.RefFeatures {
			return fmt.Errorf("engine: %d codes for %d features", len(codes), e.cfg.RefFeatures)
		}
	}
	meta := &refMeta{uid: e.nextUID}
	e.nextUID++
	if e.cfg.KeepKeypoints {
		meta.kps = kps
	}
	e.refs[id] = meta
	e.uidToPublic[meta.uid] = id
	e.pendingUIDs = append(e.pendingUIDs, meta.uid)
	e.pendingMats = append(e.pendingMats, feats)
	e.pendingCodes = append(e.pendingCodes, codes)
	if len(e.pendingUIDs) >= e.cfg.BatchSize {
		return e.sealLocked()
	}
	return nil
}

// Thresholds returns a copy of the binarization threshold vector (nil until
// the first batch seals or SetThresholds restores one).
func (e *Engine) Thresholds() binq.Thresholds {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.thresh == nil {
		return nil
	}
	return append(binq.Thresholds(nil), e.thresh...)
}

// SetThresholds installs a restored threshold vector (snapshot load). Only
// legal on an empty index — codes already enrolled under different
// thresholds would stop being comparable.
func (e *Engine) SetThresholds(t binq.Thresholds) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cfg.PruneC <= 0 {
		return fmt.Errorf("engine: thresholds require pruning (PruneC > 0)")
	}
	if len(t) != e.cfg.Dim {
		return fmt.Errorf("engine: %d thresholds for dim %d", len(t), e.cfg.Dim)
	}
	if len(e.refs) > 0 || len(e.pendingUIDs) > 0 {
		return fmt.Errorf("engine: thresholds can only be set on an empty index")
	}
	e.thresh = append(binq.Thresholds(nil), t...)
	return nil
}

// AddPhantom enrolls count phantom references (dimensions only, no data)
// for paper-scale timing experiments. Public IDs are assigned sequentially
// from startID.
func (e *Engine) AddPhantom(startID, count int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	for done := 0; done < count; {
		chunk := e.cfg.BatchSize
		if count-done < chunk {
			chunk = count - done
		}
		rb, err := knn.PhantomRefBatch(e.dev, chunk, e.cfg.RefFeatures, e.cfg.Dim,
			e.cfg.Precision, e.cfg.Algorithm != knn.RootSIFT)
		if err != nil {
			return err
		}
		for i := range rb.IDs {
			uid := e.nextUID
			e.nextUID++
			public := startID + done + i
			rb.IDs[i] = uid
			e.refs[public] = &refMeta{uid: uid}
			e.uidToPublic[uid] = public
		}
		if e.cfg.PruneC > 0 {
			// Charge the device bytes of the (phantom) code panel so the
			// capacity experiments account for the prefilter's footprint.
			if err := rb.AttachCodes(nil, chunk); err != nil {
				rb.Free()
				return err
			}
		}
		if err := e.commitBatchLocked(rb); err != nil {
			return err
		}
		done += chunk
	}
	return nil
}

// Flush seals any pending (not yet batch-sized) references so they become
// searchable.
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealLocked()
}

// sealPending makes unsealed enrollments searchable before a search runs.
// The fast path (nothing pending, the steady state) costs one read lock;
// only a dirty index escalates to the write lock.
func (e *Engine) sealPending() error {
	e.mu.RLock()
	dirty := len(e.pendingUIDs) > 0
	e.mu.RUnlock()
	if !dirty {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sealLocked()
}

// sealLocked turns the pending references into a device batch and inserts
// it into the hybrid cache.
//
//texlint:coldpath sealing runs once per BatchSize enrolls (or on Flush), not per steady-state search; the early return makes searches after a flush free
func (e *Engine) sealLocked() error {
	if len(e.pendingUIDs) == 0 {
		return nil
	}
	rb, err := knn.NewRefBatch(e.dev, e.pendingUIDs, e.pendingMats, e.cfg.Precision,
		e.cfg.Scale, e.cfg.Algorithm != knn.RootSIFT)
	if err != nil {
		return err
	}
	if e.cfg.PruneC > 0 {
		if e.thresh == nil {
			// Thresholds are learned once, from the first sealed batch,
			// then frozen: every later code must be comparable to every
			// earlier one.
			e.thresh = binq.LearnThresholds(e.pendingMats)
		}
		panel := make([]binq.Code, 0, len(e.pendingUIDs)*e.cfg.RefFeatures)
		for i, mat := range e.pendingMats {
			if pc := e.pendingCodes[i]; pc != nil {
				panel = append(panel, pc...)
			} else {
				panel = e.thresh.Encode(mat, panel)
			}
		}
		if err := rb.AttachCodes(panel, len(e.pendingUIDs)); err != nil {
			rb.Free()
			return err
		}
	}
	e.pendingUIDs = nil
	e.pendingMats = nil
	e.pendingCodes = nil
	return e.commitBatchLocked(rb)
}

// commitBatchLocked inserts a built RefBatch into the hybrid cache,
// handling FIFO demotion bookkeeping.
func (e *Engine) commitBatchLocked(rb *knn.RefBatch) error {
	sb := &sealedBatch{rb: rb, resident: true}
	if _, err := e.hybrid.Add(e.nextBatchID, rb.Bytes(), sb); err != nil {
		rb.Free()
		rb.FreeCodes()
		rb.ReleasePanel()
		for _, uid := range rb.IDs {
			if public, ok := e.uidToPublic[uid]; ok {
				delete(e.refs, public)
				delete(e.uidToPublic, uid)
			}
		}
		return fmt.Errorf("engine: cache full: %w", err)
	}
	e.nextBatchID++
	return nil
}

// Remove deletes a reference: its batch slot remains physically present
// (FIFO batches are immutable) but is no longer mapped to any public id,
// so searches skip it. Returns false for unknown ids.
func (e *Engine) Remove(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	meta, ok := e.refs[id]
	if !ok {
		return false
	}
	delete(e.refs, id)
	delete(e.uidToPublic, meta.uid)
	return true
}

// Update replaces a reference's features: the old batch slot is unmapped
// and the new features enroll under the same public id.
func (e *Engine) Update(id int, feats *blas.Matrix, kps []sift.Keypoint) error {
	e.Remove(id)
	return e.Add(id, feats, kps)
}
