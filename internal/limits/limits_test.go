package limits

import (
	"bytes"
	"errors"
	"io"
	"runtime"
	"strings"
	"testing"
)

func TestCheck(t *testing.T) {
	if err := Check("count", 10, 10); err != nil {
		t.Errorf("Check at bound: %v", err)
	}
	if err := Check("count", 0, 10); err != nil {
		t.Errorf("Check zero: %v", err)
	}
	if err := Check("count", 11, 10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Check over bound: got %v, want ErrTooLarge", err)
	}
	if err := Check("count", -1, 10); !errors.Is(err, ErrTooLarge) {
		t.Errorf("Check negative: got %v, want ErrTooLarge", err)
	}
}

func TestCap(t *testing.T) {
	for _, tc := range []struct{ n, bound, want int }{
		{5, 10, 5}, {10, 10, 10}, {11, 10, 10}, {-3, 10, 0}, {0, 10, 0},
	} {
		if got := Cap(tc.n, tc.bound); got != tc.want {
			t.Errorf("Cap(%d, %d) = %d, want %d", tc.n, tc.bound, got, tc.want)
		}
	}
}

func TestReadChunkedExact(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 1000) // 8000 bytes
	got, err := ReadChunked(bytes.NewReader(payload), len(payload), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("ReadChunked returned different bytes")
	}
	// Zero-length reads succeed with an empty buffer.
	got, err = ReadChunked(bytes.NewReader(nil), 0, 1024)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadChunked(0) = %d bytes, %v", len(got), err)
	}
}

func TestReadChunkedTruncated(t *testing.T) {
	_, err := ReadChunked(strings.NewReader("short"), 1<<20, 4096)
	if err == nil {
		t.Fatal("ReadChunked on truncated stream: want error")
	}
	if err := func() error { _, err := ReadChunked(nil, -1, 0); return err }(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ReadChunked(-1): got %v, want ErrTooLarge", err)
	}
}

// TestReadChunkedNoPreAllocation pins the property the fuzz seeds rely on:
// a hostile length prefix must not commit memory ahead of delivered payload.
// The stream truncates after a few bytes, so total allocation stays within a
// few chunks no matter how large the claimed length is.
func TestReadChunkedNoPreAllocation(t *testing.T) {
	const hostile = 1 << 30
	const chunk = 64 << 10
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadChunked(io.LimitReader(strings.NewReader("tiny"), 4), hostile, chunk)
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("hostile-length read of truncated stream: want error")
	}
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16*chunk {
		t.Fatalf("ReadChunked committed %d bytes for a 4-byte stream claiming %d", grew, hostile)
	}
}
