// Package limits centralizes the bounds-and-allocation policy for decoding
// attacker-controlled input. Every decoder that reads a length, count, or
// dimension from the wire (RESP frames, wire.FeatureRecord/SearchSummary
// varints, snapshot length prefixes, HTTP bodies) validates it here before
// the value may size an allocation, index a buffer, or bound a loop.
//
// The package exists for two reasons. First, it deduplicates the hand-rolled
// chunked-allocation code that grew independently in the RESP parser, the
// wire decoders, and snapshot loading. Second, it gives the static checker a
// single seam: texlint's wiretaint check recognizes calls into this package
// as canonical sanitizers, so a decoder that routes its untrusted lengths
// through Check/Cap/ReadChunked passes the whole-program taint analysis
// without per-site escape hatches.
package limits

import (
	"errors"
	"fmt"
	"io"
)

// ErrTooLarge is wrapped by Check failures so callers can test for the
// bound-exceeded condition regardless of which limit tripped.
var ErrTooLarge = errors.New("limits: length exceeds bound")

// DefaultChunk is the allocation granularity ReadChunked falls back to:
// large enough to amortize the append loop, small enough that a hostile
// length prefix costs the attacker bandwidth, not us memory.
const DefaultChunk = 64 << 10

// Check validates an untrusted count or length against an inclusive upper
// bound. Negative values are rejected alongside oversized ones (a negative
// length is always header corruption, never a real size). The name appears
// in the error so protocol-level wrappers stay diagnosable.
func Check(name string, n, bound int) error {
	if n < 0 || n > bound {
		return fmt.Errorf("%w: %s %d (max %d)", ErrTooLarge, name, n, bound)
	}
	return nil
}

// Cap clamps an untrusted pre-allocation hint into [0, bound]. Use it to
// size make() capacity from a wire-supplied element count: the slice starts
// no larger than bound and append grows it only as elements actually parse.
func Cap(n, bound int) int {
	if n < 0 {
		return 0
	}
	if n > bound {
		return bound
	}
	return n
}

// ReadChunked reads exactly n bytes from r, committing memory at most chunk
// bytes at a time. The length is attacker-controlled, so the buffer grows
// only as payload actually arrives: a hostile length prefix costs the peer
// n bytes of traffic, not us n bytes of RAM. chunk <= 0 selects
// DefaultChunk. Short or failed reads return the underlying error with no
// partial buffer.
func ReadChunked(r io.Reader, n, chunk int) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: negative length %d", ErrTooLarge, n)
	}
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	buf := make([]byte, 0, min(n, chunk))
	for len(buf) < n {
		k := min(n-len(buf), chunk)
		off := len(buf)
		buf = append(buf, make([]byte, k)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
