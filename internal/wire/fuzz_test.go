package wire

import (
	"testing"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/sift"
)

// FuzzDecode hammers the feature-record parser with arbitrary bytes. The
// parser must never panic and never allocate more than the input could
// possibly back (truncated-payload checks precede the big allocations).
func FuzzDecode(f *testing.F) {
	m := blas.NewMatrix(4, 3)
	for j := 0; j < 3; j++ {
		col := m.Col(j)
		for i := range col {
			col[i] = float32(i*3+j) / 12
		}
	}
	f.Add(Encode(&FeatureRecord{ID: 1, Precision: gpusim.FP32, Scale: 1, Features: m}))
	f.Add(Encode(&FeatureRecord{ID: 2, Precision: gpusim.FP16, Scale: 512, Features: m,
		Keypoints: []sift.Keypoint{{X: 1, Y: 2, Sigma: 1.6, Angle: 0.2, Response: 0.8}}}))
	f.Add([]byte{})
	f.Add([]byte("TXIFgarbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := Decode(data)
		if err != nil {
			return
		}
		// Successful decodes re-encode to bytes that decode identically.
		if _, err := Decode(Encode(rec)); err != nil {
			t.Fatalf("re-encode of accepted record rejected: %v", err)
		}
	})
}

// FuzzDecodeSummary covers the search-summary wire form the chaos suite and
// REST layer rely on.
func FuzzDecodeSummary(f *testing.F) {
	f.Add(EncodeSummary(&SearchSummary{BestID: -1, ShardsTotal: 4}))
	f.Add(EncodeSummary(&SearchSummary{BestID: 3, Score: 50, Accepted: true, Partial: true,
		ShardsAnswered: 3, ShardsTotal: 4, Compared: 100, ElapsedUS: 17,
		Ranked: []RankedMatch{{RefID: 3, Score: 50}}}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSummary(data)
		if err != nil {
			return
		}
		if _, err := DecodeSummary(EncodeSummary(s)); err != nil {
			t.Fatalf("re-encode of accepted summary rejected: %v", err)
		}
	})
}
