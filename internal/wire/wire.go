// Package wire implements the binary serialization of reference feature
// records used for storage and transport in the distributed system. The
// paper serializes feature matrices with Google protobuf before storing
// them in Redis; this package is the stdlib-only substitute: a compact
// varint-framed encoding with the same role (schema'd, versioned,
// byte-exact round-trips, usable both as Redis values and on the wire).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/half"
	"texid/internal/limits"
	"texid/internal/sift"
)

// magic and version guard decoding of foreign bytes. Version 1 is the
// original record; version 2 appends the optional binary prefilter code
// panel after the keypoints. Encode emits version 1 whenever no codes are
// present, so pre-pruning byte streams (and their goldens) are unchanged,
// and Decode accepts both.
const (
	magic    = 0x54584946 // "TXIF"
	version  = 1
	version2 = 2
)

// ErrCorrupt is returned when bytes do not parse as a feature record.
var ErrCorrupt = errors.New("wire: corrupt feature record")

// FeatureRecord is the serialized form of one reference texture's features.
type FeatureRecord struct {
	ID        int64
	Precision gpusim.Precision
	Scale     float32
	// Features is d×m (one descriptor per column).
	Features *blas.Matrix
	// Keypoints is optional geometry for geometric verification.
	Keypoints []sift.Keypoint
	// Codes is the optional binary prefilter panel (one packed 128-bit
	// code per descriptor column, len 0 or m). Persisting the enrolled
	// codes keeps snapshot round-trips bit-exact instead of re-encoding
	// from quantized features.
	Codes []binq.Code
}

// appendUvarint appends v as an unsigned varint.
func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// Encode serializes the record. FP16 precision stores descriptors as
// binary16 (after applying Scale), halving the stored size exactly as the
// production system does.
func Encode(r *FeatureRecord) []byte {
	d, m := 0, 0
	if r.Features != nil {
		d, m = r.Features.Rows, r.Features.Cols
	}
	est := 64 + d*m*4 + len(r.Keypoints)*40 + len(r.Codes)*binq.Bytes
	b := make([]byte, 0, est)
	b = binary.LittleEndian.AppendUint32(b, magic)
	if len(r.Codes) > 0 {
		b = append(b, version2)
	} else {
		b = append(b, version)
	}
	b = appendUvarint(b, uint64(r.ID))
	b = append(b, byte(r.Precision))
	b = binary.LittleEndian.AppendUint32(b, math.Float32bits(r.Scale))
	b = appendUvarint(b, uint64(d))
	b = appendUvarint(b, uint64(m))
	if r.Precision == gpusim.FP16 {
		scale := r.Scale
		if scale == 0 {
			scale = 1
		}
		for j := 0; j < m; j++ {
			for _, v := range r.Features.Col(j) {
				b = binary.LittleEndian.AppendUint16(b, half.FromFloat32(v*scale).Bits())
			}
		}
	} else {
		for j := 0; j < m; j++ {
			for _, v := range r.Features.Col(j) {
				b = binary.LittleEndian.AppendUint32(b, math.Float32bits(v))
			}
		}
	}
	b = appendUvarint(b, uint64(len(r.Keypoints)))
	for _, kp := range r.Keypoints {
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(kp.X)))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(kp.Y)))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(kp.Sigma)))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(kp.Angle)))
		b = binary.LittleEndian.AppendUint32(b, math.Float32bits(float32(kp.Response)))
	}
	if len(r.Codes) > 0 {
		b = appendUvarint(b, uint64(len(r.Codes)))
		for _, c := range r.Codes {
			for _, w := range c {
				b = binary.LittleEndian.AppendUint64(b, w)
			}
		}
	}
	return b
}

type reader struct {
	b   []byte
	pos int
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil || r.pos >= len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.pos+2 > len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.pos:])
	r.pos += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.pos+4 > len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v
}

func (r *reader) byte() byte {
	if r.err != nil || r.pos >= len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	v := r.b[r.pos]
	r.pos++
	return v
}

func (r *reader) f32() float32 { return math.Float32frombits(r.u32()) }

// Decode parses a record encoded by Encode. FP16 records come back widened
// to float32 with the storage scale divided back out, so Features is always
// in original descriptor units (the FP16 quantization itself is of course
// not undone). The input is foreign bytes (kvstore values, HTTP bodies,
// snapshot records): every dimension and count is hostile until checked.
//
//texlint:untrusted
func Decode(b []byte) (*FeatureRecord, error) {
	r := &reader{b: b}
	if r.u32() != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v := r.byte()
	if v != version && v != version2 {
		return nil, fmt.Errorf("wire: unsupported version %d", v)
	}
	rec := &FeatureRecord{}
	rec.ID = int64(r.uvarint())
	rec.Precision = gpusim.Precision(r.byte())
	if rec.Precision != gpusim.FP32 && rec.Precision != gpusim.FP16 {
		return nil, fmt.Errorf("%w: bad precision %d", ErrCorrupt, rec.Precision)
	}
	rec.Scale = r.f32()
	d := int(r.uvarint())
	m := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	const maxDim = 1 << 24
	if limits.Check("descriptor dim", d, maxDim) != nil ||
		limits.Check("descriptor count", m, maxDim) != nil ||
		limits.Check("feature elements", d*m, maxDim) != nil {
		return nil, fmt.Errorf("%w: unreasonable dimensions %dx%d", ErrCorrupt, d, m)
	}
	// Before allocating from an attacker-controlled header, confirm the
	// input actually carries that much payload (a 20-byte message must not
	// allocate a 64 MB matrix).
	elem := 4
	if rec.Precision == gpusim.FP16 {
		elem = 2
	}
	if need := d * m * elem; need > len(b)-r.pos {
		return nil, fmt.Errorf("%w: truncated feature payload", ErrCorrupt)
	}
	rec.Features = blas.NewMatrix(d, m)
	if rec.Precision == gpusim.FP16 {
		inv := float32(1)
		if rec.Scale != 0 && rec.Scale != 1 {
			inv = 1 / rec.Scale
		}
		for j := 0; j < m; j++ {
			col := rec.Features.Col(j)
			for i := range col {
				col[i] = half.FromBits(r.u16()).Float32() * inv
			}
		}
	} else {
		for j := 0; j < m; j++ {
			col := rec.Features.Col(j)
			for i := range col {
				col[i] = r.f32()
			}
		}
	}
	nk := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	if err := limits.Check("keypoint count", nk, maxDim); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if need := nk * 20; need > len(b)-r.pos {
		return nil, fmt.Errorf("%w: truncated keypoint payload", ErrCorrupt)
	}
	rec.Keypoints = make([]sift.Keypoint, nk)
	for i := range rec.Keypoints {
		rec.Keypoints[i] = sift.Keypoint{
			X:        float64(r.f32()),
			Y:        float64(r.f32()),
			Sigma:    float64(r.f32()),
			Angle:    float64(r.f32()),
			Response: float64(r.f32()),
		}
	}
	if v >= version2 {
		nc := int(r.uvarint())
		if r.err != nil {
			return nil, r.err
		}
		// Codes are per-descriptor: the only legal counts are 0 and m.
		if nc != 0 && nc != m {
			return nil, fmt.Errorf("%w: %d codes for %d descriptors", ErrCorrupt, nc, m)
		}
		if need := nc * binq.Bytes; need > len(b)-r.pos {
			return nil, fmt.Errorf("%w: truncated code payload", ErrCorrupt)
		}
		if nc > 0 {
			rec.Codes = make([]binq.Code, nc)
			for i := range rec.Codes {
				for w := range rec.Codes[i] {
					rec.Codes[i][w] = r.u64()
				}
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.pos)
	}
	return rec, nil
}
