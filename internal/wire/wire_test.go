package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"texid/internal/blas"
	"texid/internal/gpusim"
	"texid/internal/sift"
)

func record(rng *rand.Rand, prec gpusim.Precision, d, m, nk int) *FeatureRecord {
	f := blas.NewMatrix(d, m)
	for i := range f.Data {
		f.Data[i] = rng.Float32()
	}
	kps := make([]sift.Keypoint, nk)
	for i := range kps {
		kps[i] = sift.Keypoint{
			X: rng.Float64() * 256, Y: rng.Float64() * 256,
			Sigma: 1 + rng.Float64(), Angle: rng.Float64() * 6,
			Response: rng.Float64(),
		}
	}
	return &FeatureRecord{ID: rng.Int63(), Precision: prec, Scale: 1, Features: f, Keypoints: kps}
}

func TestRoundTripFP32(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rec := record(rng, gpusim.FP32, 16, 9, 9)
	got, err := Decode(Encode(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != rec.ID || got.Precision != rec.Precision || got.Scale != rec.Scale {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range rec.Features.Data {
		if got.Features.Data[i] != rec.Features.Data[i] {
			t.Fatalf("FP32 features must round-trip exactly, element %d: %g vs %g",
				i, got.Features.Data[i], rec.Features.Data[i])
		}
	}
	for i := range rec.Keypoints {
		if math.Abs(got.Keypoints[i].X-rec.Keypoints[i].X) > 1e-4 {
			t.Fatalf("keypoint %d X: %g vs %g", i, got.Keypoints[i].X, rec.Keypoints[i].X)
		}
	}
}

func TestRoundTripFP16HalvesSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r32 := record(rng, gpusim.FP32, 128, 64, 0)
	r16 := &FeatureRecord{ID: r32.ID, Precision: gpusim.FP16, Scale: 1, Features: r32.Features}
	b32 := Encode(r32)
	b16 := Encode(r16)
	if len(b16) >= len(b32)*6/10 {
		t.Fatalf("FP16 record %d bytes vs FP32 %d: expected ~half", len(b16), len(b32))
	}
	got, err := Decode(b16)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r32.Features.Data {
		diff := math.Abs(float64(got.Features.Data[i] - r32.Features.Data[i]))
		if diff > 1.0/1024 {
			t.Fatalf("FP16 element %d error %g", i, diff)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 64), // zero magic
	}
	for i, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: garbage decoded", i)
		}
	}
	// Truncation at every prefix length must error, never panic.
	rng := rand.New(rand.NewSource(3))
	full := Encode(record(rng, gpusim.FP16, 8, 4, 3))
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("truncated record of %d/%d bytes decoded", n, len(full))
		}
	}
	// Trailing bytes must be rejected too.
	if _, err := Decode(append(full, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := Encode(record(rng, gpusim.FP32, 4, 2, 0))
	b[4] = 99 // version byte
	if _, err := Decode(b); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prec := gpusim.FP32
		if rng.Intn(2) == 1 {
			prec = gpusim.FP16
		}
		rec := record(rng, prec, 1+rng.Intn(32), 1+rng.Intn(32), rng.Intn(8))
		got, err := Decode(Encode(rec))
		if err != nil {
			return false
		}
		return got.ID == rec.ID &&
			got.Features.Rows == rec.Features.Rows &&
			got.Features.Cols == rec.Features.Cols &&
			len(got.Keypoints) == len(rec.Keypoints)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestEmptyFeatures(t *testing.T) {
	rec := &FeatureRecord{ID: 1, Precision: gpusim.FP32, Scale: 1, Features: blas.NewMatrix(0, 0)}
	got, err := Decode(Encode(rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Features.Rows != 0 || got.Features.Cols != 0 {
		t.Fatalf("empty features came back %dx%d", got.Features.Rows, got.Features.Cols)
	}
}
