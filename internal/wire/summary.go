package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"texid/internal/limits"
)

// summaryMagic and summaryVersion guard SearchSummary decoding.
const (
	summaryMagic   = 0x54585253 // "TXRS"
	summaryVersion = 1
)

// RankedMatch is one (reference, score) entry of a ranked result list.
type RankedMatch struct {
	RefID int64
	Score int64
}

// SearchSummary is the canonical wire form of a merged search result. The
// encoding is fully deterministic (no maps, no floats beyond the exact
// bit pattern of ElapsedUS), so two searches that produced the same logical
// result encode to the same bytes — the chaos suite relies on this to
// assert byte-identical partial results across runs and GOMAXPROCS
// settings, and the REST layer can use it as a stable cache key.
type SearchSummary struct {
	BestID         int64 // -1 when no match was accepted
	Score          int64
	Accepted       bool
	Partial        bool
	ShardsAnswered int
	ShardsTotal    int
	Compared       int64
	ElapsedUS      float64
	Ranked         []RankedMatch
}

// appendVarint appends v zigzag-encoded (BestID can be -1).
func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// EncodeSummary serializes the summary to its canonical bytes.
func EncodeSummary(s *SearchSummary) []byte {
	b := make([]byte, 0, 32+len(s.Ranked)*8)
	b = binary.LittleEndian.AppendUint32(b, summaryMagic)
	b = append(b, summaryVersion)
	b = appendVarint(b, s.BestID)
	b = appendVarint(b, s.Score)
	flags := byte(0)
	if s.Accepted {
		flags |= 1
	}
	if s.Partial {
		flags |= 2
	}
	b = append(b, flags)
	b = appendUvarint(b, uint64(s.ShardsAnswered))
	b = appendUvarint(b, uint64(s.ShardsTotal))
	b = appendVarint(b, s.Compared)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.ElapsedUS))
	b = appendUvarint(b, uint64(len(s.Ranked)))
	for _, m := range s.Ranked {
		b = appendVarint(b, m.RefID)
		b = appendVarint(b, m.Score)
	}
	return b
}

// varint reads a zigzag varint.
func (r *reader) varint() int64 {
	if r.err != nil || r.pos >= len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	v, n := binary.Varint(r.b[r.pos:])
	if n <= 0 {
		r.err = ErrCorrupt
		return 0
	}
	r.pos += n
	return v
}

// u64 reads a little-endian uint64.
func (r *reader) u64() uint64 {
	if r.err != nil || r.pos+8 > len(r.b) {
		r.err = ErrCorrupt
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

// DecodeSummary parses bytes produced by EncodeSummary. The input is
// foreign bytes; the ranked count is hostile until bounds-checked.
//
//texlint:untrusted
func DecodeSummary(b []byte) (*SearchSummary, error) {
	r := &reader{b: b}
	if r.u32() != summaryMagic {
		return nil, fmt.Errorf("%w: bad summary magic", ErrCorrupt)
	}
	if v := r.byte(); v != summaryVersion {
		return nil, fmt.Errorf("wire: unsupported summary version %d", v)
	}
	s := &SearchSummary{}
	s.BestID = r.varint()
	s.Score = r.varint()
	flags := r.byte()
	s.Accepted = flags&1 != 0
	s.Partial = flags&2 != 0
	s.ShardsAnswered = int(r.uvarint())
	s.ShardsTotal = int(r.uvarint())
	s.Compared = r.varint()
	s.ElapsedUS = math.Float64frombits(r.u64())
	n := int(r.uvarint())
	if r.err != nil {
		return nil, r.err
	}
	const maxRanked = 1 << 20
	if limits.Check("ranked count", n, maxRanked) != nil || n*2 > len(b)-r.pos {
		return nil, fmt.Errorf("%w: unreasonable ranked count %d", ErrCorrupt, n)
	}
	s.Ranked = make([]RankedMatch, n)
	for i := range s.Ranked {
		s.Ranked[i] = RankedMatch{RefID: r.varint(), Score: r.varint()}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b)-r.pos)
	}
	return s, nil
}
