package wire

import (
	"math/rand"
	"testing"

	"texid/internal/binq"
	"texid/internal/blas"
	"texid/internal/gpusim"
)

func codeRecord(rng *rand.Rand, m int, withCodes bool) *FeatureRecord {
	feats := blas.NewMatrix(8, m)
	for i := range feats.Data {
		feats.Data[i] = rng.Float32()
	}
	rec := &FeatureRecord{ID: 42, Precision: gpusim.FP32, Scale: 1, Features: feats}
	if withCodes {
		rec.Codes = make([]binq.Code, m)
		for i := range rec.Codes {
			rec.Codes[i] = binq.Code{rng.Uint64(), rng.Uint64()}
		}
	}
	return rec
}

// TestCodesRoundTrip: version-2 records carry the binary code panel
// bit-for-bit; codeless records stay version 1 byte streams.
func TestCodesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rec := codeRecord(rng, 6, true)
	b := Encode(rec)
	if b[4] != version2 {
		t.Fatalf("version byte %d, want %d", b[4], version2)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Codes) != 6 {
		t.Fatalf("decoded %d codes, want 6", len(got.Codes))
	}
	for i := range rec.Codes {
		if got.Codes[i] != rec.Codes[i] {
			t.Fatalf("code %d: %v != %v", i, got.Codes[i], rec.Codes[i])
		}
	}

	plain := codeRecord(rng, 6, false)
	pb := Encode(plain)
	if pb[4] != version {
		t.Fatalf("codeless record encoded as version %d, want %d", pb[4], version)
	}
	if len(pb) >= len(b) {
		t.Fatal("codeless record did not shrink")
	}
	if got, err := Decode(pb); err != nil || got.Codes != nil {
		t.Fatalf("codeless decode: codes=%v err=%v", got.Codes, err)
	}
}

// TestCorruptCodesRejected: truncations inside the code payload and
// impossible code counts must fail cleanly, never panic or misparse.
func TestCorruptCodesRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := Encode(codeRecord(rng, 5, true))

	// Truncate inside the code payload (anywhere in the last 5*16 bytes).
	for _, back := range []int{1, 7, 16, 5 * 16} {
		if _, err := Decode(b[:len(b)-back]); err == nil {
			t.Fatalf("truncation %d bytes into codes accepted", back)
		}
	}

	// Corrupt the code count varint: any count other than 0 or m is
	// structural corruption. The count sits right after the (empty)
	// keypoint section.
	mut := append([]byte(nil), b...)
	mut[len(b)-5*16-1] = 3 // 5 -> 3 codes, leaves trailing bytes
	if _, err := Decode(mut); err == nil {
		t.Fatal("code count 3 for 5 descriptors accepted")
	}

	// A count claiming far more payload than present must not allocate.
	mut2 := append([]byte(nil), b[:len(b)-5*16]...)
	mut2[len(mut2)-1] = 200
	if _, err := Decode(mut2); err == nil {
		t.Fatal("oversized code count accepted")
	}
}
