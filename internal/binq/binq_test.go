package binq

import (
	"math/rand"
	"runtime"
	"testing"

	"texid/internal/blas"
)

func randMat(rng *rand.Rand, d, n int) *blas.Matrix {
	m := blas.NewMatrix(d, n)
	for i := range m.Data {
		m.Data[i] = rng.Float32()
	}
	return m
}

func TestLearnEncodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mats := []*blas.Matrix{randMat(rng, 128, 40), randMat(rng, 128, 40)}
	th := LearnThresholds(mats)
	if len(th) != 128 {
		t.Fatalf("thresholds len %d, want 128", len(th))
	}
	codes := th.Encode(mats[0], nil)
	if len(codes) != 40 {
		t.Fatalf("encoded %d codes, want 40", len(codes))
	}
	// Bit i must equal (value > threshold) exactly.
	for j := 0; j < mats[0].Cols; j++ {
		col := mats[0].Col(j)
		for i, v := range col {
			want := v > th[i]
			got := codes[j][i>>6]&(1<<(uint(i)&63)) != 0
			if got != want {
				t.Fatalf("code %d bit %d = %v, want %v", j, i, got, want)
			}
		}
	}
	// A descriptor is at Hamming distance 0 from its own code.
	self := th.Encode(mats[0], nil)
	for j := range codes {
		if Hamming(codes[j], self[j]) != 0 {
			t.Fatalf("self-distance of code %d nonzero", j)
		}
	}
}

func TestHamming(t *testing.T) {
	a := Code{0, 0}
	b := Code{^uint64(0), ^uint64(0)}
	if got := Hamming(a, b); got != 128 {
		t.Fatalf("Hamming(all-zero, all-one) = %d, want 128", got)
	}
	if got := Hamming(b, b); got != 0 {
		t.Fatalf("Hamming(x, x) = %d, want 0", got)
	}
	if got := Hamming(Code{0b1011, 0}, Code{0b0001, 1 << 63}); got != 3 {
		t.Fatalf("Hamming = %d, want 3", got)
	}
}

// scanRef is the scalar oracle for ScanMin.
func scanRef(panel []Code, m int, probes []Code) []uint32 {
	scores := make([]uint32, len(panel)/m)
	for img := range scores {
		var sum uint32
		for _, p := range probes {
			minD := MaxDim + 1
			for _, c := range panel[img*m : (img+1)*m] {
				if d := Hamming(p, c); d < minD {
					minD = d
				}
			}
			sum += uint32(minD)
		}
		scores[img] = sum
	}
	return scores
}

func TestScanMinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const m, images, nProbes = 24, 37, 16
	panel := make([]Code, m*images)
	for i := range panel {
		panel[i] = Code{rng.Uint64(), rng.Uint64()}
	}
	probes := make([]Code, nProbes)
	for i := range probes {
		probes[i] = Code{rng.Uint64(), rng.Uint64()}
	}
	want := scanRef(panel, m, probes)
	got := make([]uint32, images)
	ScanMin(panel, m, probes, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("score[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanMinDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const m, images, nProbes = 48, 64, 32
	panel := make([]Code, m*images)
	for i := range panel {
		panel[i] = Code{rng.Uint64(), rng.Uint64()}
	}
	probes := make([]Code, nProbes)
	for i := range probes {
		probes[i] = Code{rng.Uint64(), rng.Uint64()}
	}
	var runs [][]uint32
	for _, procs := range []int{1, 4, 1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		scores := make([]uint32, images)
		ScanMin(panel, m, probes, scores)
		runtime.GOMAXPROCS(prev)
		runs = append(runs, scores)
	}
	for r := 1; r < len(runs); r++ {
		for i := range runs[0] {
			if runs[r][i] != runs[0][i] {
				t.Fatalf("run %d score[%d] = %d, differs from run 0's %d", r, i, runs[r][i], runs[0][i])
			}
		}
	}
}

// TestScanMinZeroAlloc pins the warm scan at 0 allocs/op — the alloc guard
// for the prefilter hot path.
func TestScanMinZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const m, images, nProbes = 64, 32, 16
	panel := make([]Code, m*images)
	for i := range panel {
		panel[i] = Code{rng.Uint64(), rng.Uint64()}
	}
	probes := make([]Code, nProbes)
	for i := range probes {
		probes[i] = Code{rng.Uint64(), rng.Uint64()}
	}
	scores := make([]uint32, images)
	var sc Scanner
	sc.Scan(panel, m, probes, scores) // warm the worker pool and bind the closure
	allocs := testing.AllocsPerRun(20, func() {
		sc.Scan(panel, m, probes, scores)
	})
	if allocs != 0 {
		t.Fatalf("warm ScanMin allocates %.1f times per op, want 0", allocs)
	}
}

func TestTopCSelection(t *testing.T) {
	scores := []uint32{9, 3, 7, 3, 1, 8, 3}
	var sel TopC
	sel.Reset(3)
	for i, s := range scores {
		sel.Offer(int32(i), s)
	}
	got := sel.AppendSorted(nil)
	// Best three: score 1 (idx 4), then the score-3 ties resolved toward
	// the smaller indices 1 and 3. Sorted ascending by index: 1, 3, 4.
	want := []int32{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("selected %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("selected %v, want %v", got, want)
		}
	}
}

func TestTopCFewerThanC(t *testing.T) {
	var sel TopC
	sel.Reset(10)
	sel.Offer(0, 5)
	sel.Offer(1, 2)
	got := sel.AppendSorted(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("selected %v, want [0 1]", got)
	}
}

func TestTopCZeroAllocWarm(t *testing.T) {
	var sel TopC
	sel.Reset(16)
	dst := make([]int32, 0, 16)
	allocs := testing.AllocsPerRun(20, func() {
		sel.Reset(16)
		for i := 0; i < 1000; i++ {
			sel.Offer(int32(i), uint32(i*2654435761)%997)
		}
		dst = sel.AppendSorted(dst[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm TopC allocates %.1f times per op, want 0", allocs)
	}
	if len(dst) != 16 {
		t.Fatalf("selected %d, want 16", len(dst))
	}
}

// TestTopCMatchesSort cross-checks the heap selection against a full sort
// on random scores.
func TestTopCMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		c := 1 + rng.Intn(20)
		scores := make([]uint32, n)
		for i := range scores {
			scores[i] = uint32(rng.Intn(12)) // small range forces ties
		}
		var sel TopC
		sel.Reset(c)
		for i, s := range scores {
			sel.Offer(int32(i), s)
		}
		got := sel.AppendSorted(nil)

		// Oracle: stable selection by (score, index).
		type ent struct {
			s uint32
			i int32
		}
		all := make([]ent, n)
		for i, s := range scores {
			all[i] = ent{s, int32(i)}
		}
		for i := 1; i < n; i++ { // insertion sort by (score, idx)
			v := all[i]
			j := i - 1
			for j >= 0 && (all[j].s > v.s || (all[j].s == v.s && all[j].i > v.i)) {
				all[j+1] = all[j]
				j--
			}
			all[j+1] = v
		}
		keep := c
		if keep > n {
			keep = n
		}
		want := make([]int32, 0, keep)
		for _, e := range all[:keep] {
			want = append(want, e.i)
		}
		for i := 1; i < len(want); i++ { // sort ascending by index
			v := want[i]
			j := i - 1
			for j >= 0 && want[j] > v {
				want[j+1] = want[j]
				j--
			}
			want[j+1] = v
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: selected %v, want %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: selected %v, want %v", trial, got, want)
			}
		}
	}
}
