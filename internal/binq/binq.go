// Package binq implements the binary-quantized Hamming prefilter that lets
// a shard hold millions of references without paying the exact GEMM for
// every one of them. Each 128-d RootSIFT descriptor is binarized into a
// packed 128-bit code (bit i = sign of the mean-centered component i, the
// "sign-of-mean" quantizer of Jian et al.'s XOR-friendly binary
// quantization), so one reference image collapses from m·d·2 bytes of FP16
// features to m·16 bytes of codes — a 16× smaller operand that a blocked
// XOR + popcount scan walks at memory bandwidth. The scan keeps a
// deterministic top-C candidate set per query; only those candidates go
// through the exact GemmTN/HGemmTNPanel + Top2AddRows rerank, which is why
// pruned scores are bitwise identical to unpruned ones (see the engine's
// pruning pipeline).
//
// Everything here is deterministic by construction: the scan parallelizes
// over disjoint per-image score slots (blas.Parallel's shape-only
// partition), the selector breaks score ties by the lower image index, and
// no float arithmetic is involved anywhere.
package binq

import (
	"math/bits"

	"texid/internal/blas"
)

const (
	// Words is the number of 64-bit words per code.
	Words = 2
	// MaxDim is the largest descriptor dimensionality a code can hold.
	MaxDim = Words * 64
)

// Code is one packed binary descriptor: bit i (word i/64, bit i%64) is set
// iff component i of the descriptor exceeds its learned threshold.
type Code [Words]uint64

// Bytes is the storage footprint of one code.
const Bytes = Words * 8

// Thresholds holds the per-dimension binarization cut points, learned once
// at enroll time (the mean of each dimension over the first sealed batch)
// and frozen thereafter so codes stay comparable across batches and across
// snapshot save/load.
type Thresholds []float32

// LearnThresholds computes per-dimension means over the columns of the
// given descriptor matrices. RootSIFT components are all non-negative, so
// mean-centering is what gives the sign bit its information content.
func LearnThresholds(mats []*blas.Matrix) Thresholds {
	if len(mats) == 0 {
		return nil
	}
	d := mats[0].Rows
	sums := make([]float64, d)
	n := 0
	for _, m := range mats {
		for j := 0; j < m.Cols; j++ {
			col := m.Col(j)
			for i, v := range col {
				sums[i] += float64(v)
			}
		}
		n += m.Cols
	}
	t := make(Thresholds, d)
	if n == 0 {
		return t
	}
	for i, s := range sums {
		t[i] = float32(s / float64(n))
	}
	return t
}

// Encode appends one code per column of mat to dst and returns the extended
// slice. Bit i is set iff col[i] > t[i] — strictly greater, so the
// quantizer is a pure function of the float bits with no ties to break.
// mat.Rows must not exceed MaxDim (or len(t)).
func (t Thresholds) Encode(mat *blas.Matrix, dst []Code) []Code {
	for j := 0; j < mat.Cols; j++ {
		col := mat.Col(j)
		var c Code
		for i, v := range col {
			if v > t[i] {
				c[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		dst = append(dst, c) //texlint:ignore hotalloc callers append onto a reused scratch whose capacity is retained across searches; growth amortizes to zero warm (TestScanZeroAlloc, TestSearchSteadyStateAllocs)
	}
	return dst
}

// Hamming returns the Hamming distance between two codes.
func Hamming(a, b Code) int {
	return bits.OnesCount64(a[0]^b[0]) + bits.OnesCount64(a[1]^b[1])
}

// Scanner runs the prefilter kernel with zero warm-path allocations: the
// per-image closure handed to blas.Parallel is bound once and reused, so
// steady-state scans never touch the heap. A Scanner is not safe for
// concurrent use; the engine owns one per engine under its exec mutex.
type Scanner struct {
	panel  []Code
	m      int
	probes []Code
	scores []uint32
	fn     func(int)
}

// Scan is the prefilter kernel: panel holds images·m codes (image i's
// descriptors occupy panel[i*m:(i+1)*m], mirroring the concatenated GEMM
// operand layout), and for every image the kernel accumulates
//
//	scores[i] = Σ_p min_j Hamming(probes[p], panel[i*m+j])
//
// — each query probe votes with its distance to the image's closest code,
// so a matching reference accumulates a small score. The loop blocks by
// image: one image's 6 KB code block stays cache-resident across all
// probes, which is what makes the host kernel compute-bound rather than
// re-streaming the panel per probe. Parallelism is per image via
// blas.Parallel (shape-only partition, disjoint score writes), so results
// are bitwise independent of GOMAXPROCS; the integer arithmetic has no
// rounding to reorder in the first place.
//
// len(panel) must be a multiple of m and len(scores) = len(panel)/m. The
// warm path performs zero allocations.
//
//texlint:hotpath
func (s *Scanner) Scan(panel []Code, m int, probes []Code, scores []uint32) {
	if m <= 0 || len(panel) == 0 {
		return
	}
	if s.fn == nil {
		s.fn = s.scanImage //texlint:ignore hotalloc the method value is bound once on first use and reused for the scanner's lifetime
	}
	s.panel, s.m, s.probes, s.scores = panel, m, probes, scores
	blas.Parallel(len(panel)/m, s.fn)
	s.panel, s.probes, s.scores = nil, nil, nil
}

// scanImage scores one image block against every probe.
//
//texlint:hotpath
func (s *Scanner) scanImage(img int) {
	m := s.m
	block := s.panel[img*m : (img+1)*m]
	var sum uint32
	for _, p := range s.probes {
		p0, p1 := p[0], p[1]
		minD := uint32(MaxDim + 1)
		for _, c := range block {
			d := uint32(bits.OnesCount64(c[0]^p0) + bits.OnesCount64(c[1]^p1))
			if d < minD {
				minD = d
			}
		}
		sum += minD
	}
	s.scores[img] = sum
}

// ScanMin is the convenience form of Scanner.Scan for one-off scans (tests,
// oracles); it allocates a throwaway Scanner per call.
//
//texlint:coldpath one-off entry point; the engine and benchmarks reuse a Scanner
func ScanMin(panel []Code, m int, probes []Code, scores []uint32) {
	var s Scanner
	s.Scan(panel, m, probes, scores)
}

// candidate is one selector entry.
type candidate struct {
	score uint32
	idx   int32
}

// TopC is a deterministic bounded selector: it retains the c entries with
// the smallest scores, breaking score ties toward the smaller index. The
// heap buffer is retained across Reset calls, so a warm selector allocates
// nothing.
type TopC struct {
	c    int
	heap []candidate // max-heap: worst retained entry at the root
}

// Reset prepares the selector to keep the best c entries.
func (t *TopC) Reset(c int) {
	t.c = c
	if cap(t.heap) < c {
		t.heap = make([]candidate, 0, c)
	}
	t.heap = t.heap[:0]
}

// Len returns the number of entries currently retained.
func (t *TopC) Len() int { return len(t.heap) }

// worse reports whether a ranks strictly worse than b: a larger score, or
// an equal score at a larger index. This is the heap order (worst at root)
// and its negation is the selection order.
func worse(a, b candidate) bool {
	return a.score > b.score || (a.score == b.score && a.idx > b.idx)
}

// Offer considers one (index, score) entry. Entries must be offered in
// ascending index order for the tie-break to be meaningful; the selection
// is then a pure function of the score slice.
//
//texlint:hotpath
func (t *TopC) Offer(idx int32, score uint32) {
	e := candidate{score: score, idx: idx}
	if len(t.heap) < t.c {
		t.heap = append(t.heap, e)
		t.siftUp(len(t.heap) - 1)
		return
	}
	if t.c == 0 || !worse(t.heap[0], e) {
		return // e is no better than the current worst
	}
	t.heap[0] = e
	t.siftDown(0)
}

func (t *TopC) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(t.heap[i], t.heap[parent]) {
			return
		}
		t.heap[i], t.heap[parent] = t.heap[parent], t.heap[i]
		i = parent
	}
}

func (t *TopC) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && worse(t.heap[l], t.heap[largest]) {
			largest = l
		}
		if r < n && worse(t.heap[r], t.heap[largest]) {
			largest = r
		}
		if largest == i {
			return
		}
		t.heap[i], t.heap[largest] = t.heap[largest], t.heap[i]
		i = largest
	}
}

// AppendSorted appends the retained indices to dst in ascending index
// order (the order the rerank walks batches in) and returns the extended
// slice. The heap is consumed in place; call Reset before reusing the
// selector. Indices are unique, so insertion sort on the small candidate
// set is deterministic and allocation-free.
func (t *TopC) AppendSorted(dst []int32) []int32 {
	base := len(dst)
	for _, e := range t.heap {
		dst = append(dst, e.idx) //texlint:ignore hotalloc dst is a reused candidate scratch capped at C entries per query; capacity is retained across searches
	}
	sorted := dst[base:]
	for i := 1; i < len(sorted); i++ {
		v := sorted[i]
		j := i - 1
		for j >= 0 && sorted[j] > v {
			sorted[j+1] = sorted[j]
			j--
		}
		sorted[j+1] = v
	}
	return dst
}
