package blas

import (
	"fmt"
	"runtime"
	"sync"
)

// GemmTN computes C = alpha·AᵀB + beta·C where A is k×m, B is k×n and C is
// m×n (all column-major). This is the exact shape of the similarity-matrix
// step: with A = R (d×m reference features) and B = Q (d×n query features),
// alpha = -2 and beta = 0 produce the -2·RᵀQ term of Eq. 1.
//
// The kernel is parallelized over column blocks of C with one goroutine per
// available CPU, and the inner dot product is unrolled by four. Because the
// matrices are column-major, Aᵀ·B touches only contiguous columns of A and
// B, so the access pattern is stream-friendly.
func GemmTN(alpha float32, A, B *Matrix, beta float32, C *Matrix) {
	if A.Rows != B.Rows {
		panic(fmt.Sprintf("blas: GemmTN inner dimension mismatch %d != %d", A.Rows, B.Rows))
	}
	if C.Rows != A.Cols || C.Cols != B.Cols {
		panic(fmt.Sprintf("blas: GemmTN output %dx%d, want %dx%d", C.Rows, C.Cols, A.Cols, B.Cols))
	}
	parallelColumns(C.Cols, func(j0, j1 int) {
		// Process four output columns per pass over A: each column of A is
		// then loaded once per four dot products instead of once per one,
		// quartering the memory traffic of the dominant operand.
		j := j0
		for ; j+4 <= j1; j += 4 {
			b0, b1, b2, b3 := B.Col(j), B.Col(j+1), B.Col(j+2), B.Col(j+3)
			c0, c1, c2, c3 := C.Col(j), C.Col(j+1), C.Col(j+2), C.Col(j+3)
			for i := 0; i < A.Cols; i++ {
				acol := A.Col(i)
				d0, d1, d2, d3 := dot4(acol, b0, b1, b2, b3)
				if beta == 0 {
					c0[i] = alpha * d0
					c1[i] = alpha * d1
					c2[i] = alpha * d2
					c3[i] = alpha * d3
				} else {
					c0[i] = alpha*d0 + beta*c0[i]
					c1[i] = alpha*d1 + beta*c1[i]
					c2[i] = alpha*d2 + beta*c2[i]
					c3[i] = alpha*d3 + beta*c3[i]
				}
			}
		}
		for ; j < j1; j++ {
			bcol := B.Col(j)
			ccol := C.Col(j)
			for i := 0; i < A.Cols; i++ {
				d := dot(A.Col(i), bcol)
				if beta == 0 {
					ccol[i] = alpha * d
				} else {
					ccol[i] = alpha*d + beta*ccol[i]
				}
			}
		}
	})
}

// dot4 computes the dot product of a against four right-hand columns in
// one pass over a.
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	_ = b0[n-1]
	_ = b1[n-1]
	_ = b2[n-1]
	_ = b3[n-1]
	for i := 0; i < n; i++ {
		v := a[i]
		s0 += v * b0[i]
		s1 += v * b1[i]
		s2 += v * b2[i]
		s3 += v * b3[i]
	}
	return
}

// dot computes the float32 dot product of two equal-length slices with
// 4-way unrolling.
func dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	n := len(a)
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < n; i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// AddRowVector adds v[i] to every element of row i of C, in place. This is
// step 4 of Algorithm 1 (adding the reference squared norms N_R), which the
// paper performs in-place on the GPU to avoid materializing an m×n copy.
func AddRowVector(C *Matrix, v []float32) {
	if len(v) != C.Rows {
		panic(fmt.Sprintf("blas: AddRowVector length %d, want %d", len(v), C.Rows))
	}
	parallelColumns(C.Cols, func(j0, j1 int) {
		for j := j0; j < j1; j++ {
			col := C.Col(j)
			for i := range col {
				col[i] += v[i]
			}
		}
	})
}

// AddColScalar adds s to the first k elements of column j of C, in place
// (step 6 of Algorithm 1: adding N_Q only to the k surviving candidates).
func AddColScalar(C *Matrix, j, k int, s float32) {
	col := C.Col(j)
	if k > len(col) {
		k = len(col)
	}
	for i := 0; i < k; i++ {
		col[i] += s
	}
}

// parallelColumns splits [0, n) into contiguous chunks and runs fn on each
// chunk, using up to GOMAXPROCS goroutines. Small inputs run inline.
func parallelColumns(n int, fn func(j0, j1 int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 || n < 8 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		j0 := w * chunk
		j1 := j0 + chunk
		if j1 > n {
			j1 = n
		}
		if j0 >= j1 {
			break
		}
		wg.Add(1)
		go func(j0, j1 int) {
			defer wg.Done()
			fn(j0, j1)
		}(j0, j1)
	}
	wg.Wait()
}
