package blas

import (
	"fmt"
	"math"
	"sync"
)

// GemmTN computes C = alpha·AᵀB + beta·C where A is k×m, B is k×n and C is
// m×n (all column-major). This is the exact shape of the similarity-matrix
// step: with A = R (d×m reference features) and B = Q (d×n query features),
// alpha = -2 and beta = 0 produce the -2·RᵀQ term of Eq. 1.
//
// On amd64 with AVX2+FMA the kernel packs A into 8-column interleaved
// i-panels and runs an 8×8 register tile that vectorizes over the *output*
// rows: each C element is one sequential FMA chain over the k dimension, so
// its value depends only on the two operand columns — not on tile position,
// tile width, worker count, or how the matrix is batched. That per-element
// invariance is what lets batched-vs-single and multi-vs-single query tests
// demand bitwise equality, and makes the result independent of GOMAXPROCS.
// The portable fallback keeps the same property with scalar chains.
//
//texlint:hotpath
func GemmTN(alpha float32, A, B *Matrix, beta float32, C *Matrix) {
	if A.Rows != B.Rows {
		panic(fmt.Sprintf("blas: GemmTN inner dimension mismatch %d != %d", A.Rows, B.Rows))
	}
	if C.Rows != A.Cols || C.Cols != B.Cols {
		panic(fmt.Sprintf("blas: GemmTN output %dx%d, want %dx%d", C.Rows, C.Cols, A.Cols, B.Cols))
	}
	if C.Rows == 0 || C.Cols == 0 {
		return
	}
	if A.Rows == 0 {
		// Empty inner dimension: C = alpha·0 + beta·C.
		for j := 0; j < C.Cols; j++ {
			col := C.Col(j)
			for i := range col {
				if beta == 0 {
					col[i] = 0
				} else {
					col[i] *= beta
				}
			}
		}
		return
	}
	if useAVX2 {
		gemmTNAVX(alpha, A, B, beta, C)
		return
	}
	gemmTNGeneric(alpha, A, B, beta, C)
}

// Blocking parameters for the AVX2 path. An i-panel is 8 A-columns packed
// interleaved; a super-tile groups panels so one j-group re-streams at most
// superTiles·8·k floats of packed A (256 KiB at k=128) from L2; a j-group
// is a run of 8-column octets sharing that super-tile.
const (
	tileRows       = 8
	superTiles     = 64 // 512 C rows per block
	octetsPerGroup = 16 // 128 C columns per block
)

// storeMasks[r] has the first r lanes set, gating kernel stores on partial
// i-tiles.
var storeMasks = func() (m [9][8]int32) {
	for r := 1; r <= 8; r++ {
		for i := 0; i < r; i++ {
			m[r][i] = -1
		}
	}
	return
}()

// f32Pool recycles packing scratch across kernel invocations. Buffers are
// fully overwritten before use, so reuse cannot perturb results.
var f32Pool = sync.Pool{New: func() any { return new([]float32) }}

func getF32(n int) (*[]float32, []float32) {
	p := f32Pool.Get().(*[]float32)
	if cap(*p) < n {
		*p = make([]float32, n)
	}
	return p, (*p)[:n]
}

func gemmTNAVX(alpha float32, A, B *Matrix, beta float32, C *Matrix) {
	m, n, k := A.Cols, B.Cols, A.Rows
	nt := (m + tileRows - 1) / tileRows
	ph, ap := getF32(nt * tileRows * k)
	defer f32Pool.Put(ph)

	nSuper := (nt + superTiles - 1) / superTiles
	Parallel(nSuper, func(sb int) {
		t0, t1 := sb*superTiles, min((sb+1)*superTiles, nt)
		for t := t0; t < t1; t++ {
			packTile(A, t*tileRows, k, ap[t*tileRows*k:(t+1)*tileRows*k])
		}
	})

	nOct := n / 8
	jGroups := (nOct + octetsPerGroup - 1) / octetsPerGroup
	jBlocks := jGroups
	if n%8 != 0 {
		jBlocks++
	}
	bstride := uintptr(B.Stride) * 4
	cstride := uintptr(C.Stride) * 4
	Parallel(nSuper*jBlocks, func(blk int) {
		sb, jb := blk/jBlocks, blk%jBlocks
		t0, t1 := sb*superTiles, min((sb+1)*superTiles, nt)
		if jb < jGroups {
			for o := jb * octetsPerGroup; o < min((jb+1)*octetsPerGroup, nOct); o++ {
				j := o * 8
				bp := &B.Data[j*B.Stride]
				for t := t0; t < t1; t++ {
					rows := min(m-t*tileRows, tileRows)
					kern8x8(&ap[t*tileRows*k], bp, bstride,
						&C.Data[j*C.Stride+t*tileRows], cstride,
						int64(k), alpha, beta, &storeMasks[rows][0])
				}
			}
		} else {
			for j := nOct * 8; j < n; j++ {
				bp := &B.Data[j*B.Stride]
				for t := t0; t < t1; t++ {
					rows := min(m-t*tileRows, tileRows)
					kern8x1(&ap[t*tileRows*k], bp,
						&C.Data[j*C.Stride+t*tileRows],
						int64(k), alpha, beta, &storeMasks[rows][0])
				}
			}
		}
	})
}

// packTile interleaves 8 consecutive A columns starting at i0 into dst:
// dst[l*8+r] = A[l, i0+r], zero-padding past A.Cols. Padding lanes compute
// garbage the store masks discard, so real elements are unaffected.
func packTile(A *Matrix, i0, k int, dst []float32) {
	if A.Cols-i0 >= 8 {
		c0, c1, c2, c3 := A.Col(i0), A.Col(i0+1), A.Col(i0+2), A.Col(i0+3)
		c4, c5, c6, c7 := A.Col(i0+4), A.Col(i0+5), A.Col(i0+6), A.Col(i0+7)
		for l := 0; l < k; l++ {
			d := dst[l*8 : l*8+8]
			d[0], d[1], d[2], d[3] = c0[l], c1[l], c2[l], c3[l]
			d[4], d[5], d[6], d[7] = c4[l], c5[l], c6[l], c7[l]
		}
		return
	}
	cols := A.Cols - i0
	for r := 0; r < 8; r++ {
		if r < cols {
			col := A.Col(i0 + r)
			for l := 0; l < k; l++ {
				dst[l*8+r] = col[l]
			}
		} else {
			for l := 0; l < k; l++ {
				dst[l*8+r] = 0
			}
		}
	}
}

// gemmTNGeneric is the portable kernel: fixed 4-column blocks so the
// partition never depends on worker count, with every element accumulated
// by one sequential multiply-add chain (dot4 keeps one chain per output, so
// quad and tail columns round identically).
func gemmTNGeneric(alpha float32, A, B *Matrix, beta float32, C *Matrix) {
	m, n := A.Cols, B.Cols
	nq := n / 4
	blocks := nq
	if n%4 != 0 {
		blocks++
	}
	Parallel(blocks, func(b int) {
		if b < nq {
			j := b * 4
			b0, b1, b2, b3 := B.Col(j), B.Col(j+1), B.Col(j+2), B.Col(j+3)
			c0, c1, c2, c3 := C.Col(j), C.Col(j+1), C.Col(j+2), C.Col(j+3)
			for i := 0; i < m; i++ {
				d0, d1, d2, d3 := dot4(A.Col(i), b0, b1, b2, b3)
				if beta == 0 {
					c0[i] = alpha * d0
					c1[i] = alpha * d1
					c2[i] = alpha * d2
					c3[i] = alpha * d3
				} else {
					c0[i] = alpha*d0 + beta*c0[i]
					c1[i] = alpha*d1 + beta*c1[i]
					c2[i] = alpha*d2 + beta*c2[i]
					c3[i] = alpha*d3 + beta*c3[i]
				}
			}
		} else {
			for j := nq * 4; j < n; j++ {
				bcol := B.Col(j)
				ccol := C.Col(j)
				for i := 0; i < m; i++ {
					d := dot(A.Col(i), bcol)
					if beta == 0 {
						ccol[i] = alpha * d
					} else {
						ccol[i] = alpha*d + beta*ccol[i]
					}
				}
			}
		}
	})
}

// dot4 computes the dot product of a against four right-hand columns in
// one pass over a. Each output keeps its own sequential accumulator chain,
// so the four results are bitwise identical to four dot calls.
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	if n == 0 {
		return
	}
	// Reslicing to the shared length lets the compiler drop the four
	// inner-loop bounds checks.
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for i, v := range a {
		s0 += v * b0[i]
		s1 += v * b1[i]
		s2 += v * b2[i]
		s3 += v * b3[i]
	}
	return
}

// dot computes the float32 dot product of two equal-length slices with one
// sequential accumulator chain — the same per-element order as one lane of
// dot4, so a column's value does not depend on which kernel computed it.
func dot(a, b []float32) float32 {
	var s float32
	n := len(a)
	if n == 0 {
		return 0
	}
	b = b[:n] // bounds-check elimination, mirroring dot4
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddRowVector adds v[i] to every element of row i of C, in place. This is
// step 4 of Algorithm 1 (adding the reference squared norms N_R), which the
// paper performs in-place on the GPU to avoid materializing an m×n copy.
func AddRowVector(C *Matrix, v []float32) {
	if len(v) != C.Rows {
		panic(fmt.Sprintf("blas: AddRowVector length %d, want %d", len(v), C.Rows))
	}
	const colBlock = 16
	Parallel((C.Cols+colBlock-1)/colBlock, func(b int) {
		for j := b * colBlock; j < min((b+1)*colBlock, C.Cols); j++ {
			col := C.Col(j)
			for i := range col {
				col[i] += v[i]
			}
		}
	})
}

// Top2AddRows is the fused Algorithm-1 epilogue: for every column of C it
// scans rows [lo, hi) once, adding norms[i] (step 4) on the fly and keeping
// the two smallest sums in registers (step 5), writing them plus the best
// row offset to best/second/bestIdx at the column's index. It computes
// exactly what AddRowVector followed by a top-2 scan would — same add, same
// strict-< comparisons — but traverses the m×n block once and leaves C
// untouched. A nil norms skips the addition (the RootSIFT path, where the
// norm terms vanish).
//
//texlint:hotpath
func Top2AddRows(C *Matrix, norms []float32, lo, hi int, best, second []float32, bestIdx []int32) {
	n := C.Cols
	if len(best) < n || len(second) < n || len(bestIdx) < n {
		panic(fmt.Sprintf("blas: Top2AddRows outputs %d/%d/%d, want >= %d",
			len(best), len(second), len(bestIdx), n))
	}
	if norms != nil && len(norms) != C.Rows {
		panic(fmt.Sprintf("blas: Top2AddRows norms length %d, want %d", len(norms), C.Rows))
	}
	for j := 0; j < n; j++ {
		col := C.Col(j)
		b, s := float32(math.MaxFloat32), float32(math.MaxFloat32)
		bi := int32(-1)
		if norms != nil {
			for i := lo; i < hi; i++ {
				v := col[i] + norms[i]
				if v < b {
					s = b
					b = v
					bi = int32(i - lo)
				} else if v < s {
					s = v
				}
			}
		} else {
			for i := lo; i < hi; i++ {
				v := col[i]
				if v < b {
					s = b
					b = v
					bi = int32(i - lo)
				} else if v < s {
					s = v
				}
			}
		}
		best[j], second[j], bestIdx[j] = b, s, bi
	}
}

// AddColScalar adds s to the first k elements of column j of C, in place
// (step 6 of Algorithm 1: adding N_Q only to the k surviving candidates).
func AddColScalar(C *Matrix, j, k int, s float32) {
	col := C.Col(j)
	if k > len(col) {
		k = len(col)
	}
	for i := 0; i < k; i++ {
		col[i] += s
	}
}
