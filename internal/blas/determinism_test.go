package blas

import (
	"math/rand"
	"runtime"
	"testing"
)

// gomaxprocsVariants is the GOMAXPROCS sweep the determinism tests run
// under: serial, minimal parallelism, and everything the machine has.
func gomaxprocsVariants() []int {
	vs := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		vs = append(vs, n)
	}
	return vs
}

// TestGemmTNBitwiseAcrossGOMAXPROCS verifies the deterministic-parallelism
// contract end to end: the packed kernel must produce bit-identical output
// regardless of how many workers the pool uses. Odd shapes exercise the
// micro-kernel tail paths as well as full panels.
func TestGemmTNBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, dims := range [][3]int{{8, 8, 4}, {95, 113, 64}, {256, 192, 128}} {
		m, n, d := dims[0], dims[1], dims[2]
		A := randomMatrix(rng, d, m, 1)
		B := randomMatrix(rng, d, n, 1)
		var want []float32
		for _, procs := range gomaxprocsVariants() {
			runtime.GOMAXPROCS(procs)
			C := NewMatrix(m, n)
			GemmTN(-2, A, B, 0, C)
			if want == nil {
				want = append([]float32(nil), C.Data...)
				continue
			}
			for i, v := range C.Data {
				if v != want[i] {
					t.Fatalf("dims %v GOMAXPROCS=%d: C.Data[%d] = %x, want %x",
						dims, procs, i, v, want[i])
				}
			}
		}
	}
}

// TestHGemmTNBitwiseAcrossGOMAXPROCS does the same for the FP16 path, whose
// host-side staging conversion is also block-parallel.
func TestHGemmTNBitwiseAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	const m, n, d = 96, 112, 64
	A, _ := HalfFromMatrix(randomMatrix(rng, d, m, 1), 1)
	B, _ := HalfFromMatrix(randomMatrix(rng, d, n, 1), 1)
	for _, accum := range []AccumMode{AccumFP16, AccumFP32} {
		var want []float32
		for _, procs := range gomaxprocsVariants() {
			runtime.GOMAXPROCS(procs)
			C := NewMatrix(m, n)
			HGemmTN(-2, A, B, accum, C)
			if want == nil {
				want = append([]float32(nil), C.Data...)
				continue
			}
			for i, v := range C.Data {
				if v != want[i] {
					t.Fatalf("accum %v GOMAXPROCS=%d: C.Data[%d] = %x, want %x",
						accum, procs, i, v, want[i])
				}
			}
		}
	}
}
