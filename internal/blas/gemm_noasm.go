//go:build !amd64

package blas

// Non-amd64 builds always take the portable kernels in gemm.go.
const useAVX2 = false

func kern8x8(apack *float32, b *float32, bstride uintptr, c *float32, cstride uintptr, k int64, alpha float32, beta float32, mask *int32) {
	panic("blas: asm kernel on non-amd64 build")
}

func kern8x1(apack *float32, b *float32, c *float32, k int64, alpha float32, beta float32, mask *int32) {
	panic("blas: asm kernel on non-amd64 build")
}
