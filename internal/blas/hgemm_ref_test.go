package blas

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"texid/internal/half"
)

// hgemmRef is the pre-optimization HGemmTN algorithm, kept as the bit-exact
// oracle for the blocked/unrolled/assembly kernels: widen each operand
// element on demand and run one scalar rounding chain per output element,
// exactly as the original per-element dotFP16/dotProductsFP16 loops did.
// half.Round is itself pinned to the original FromFloat32∘Float32 rounding
// by the half package's exhaustive table tests, so this closes the loop
// back to the seed implementation.
func hgemmRef(alpha float32, A, B *HalfMatrix, mode AccumMode, C *Matrix) {
	for j := 0; j < B.Cols; j++ {
		for i := 0; i < A.Cols; i++ {
			var acc float32
			for l := 0; l < A.Rows; l++ {
				p := half.Round(A.At(l, i) * B.At(l, j))
				if mode == AccumFP16 {
					acc = half.Round(acc + p)
				} else {
					acc += p
				}
			}
			C.Col(j)[i] = alpha * acc
		}
	}
}

// fillHalfStress fills h with a deterministic mix of ordinary values and
// every special the rounding chains can encounter: zeros of both signs,
// binary16 subnormals, the largest finite half, ±Inf, and magnitudes big
// enough to overflow an FP16 accumulator mid-chain (so Inf + finite,
// Inf - Inf → NaN, and NaN propagation all occur in the outputs).
func fillHalfStress(h *HalfMatrix, rng *rand.Rand) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)),
		half.SmallestSubnormal.Float32(), -half.SmallestSubnormal.Float32(),
		half.SmallestNormal.Float32(),
		half.Max, -half.Max,
		float32(math.Inf(1)), float32(math.Inf(-1)),
		5e-5, -5e-5, 1024, -4096,
	}
	for idx := range h.Data {
		var v float32
		switch rng.Intn(4) {
		case 0:
			v = specials[rng.Intn(len(specials))]
		case 1:
			v = float32(rng.NormFloat64()) * 100
		case 2:
			v = float32(rng.NormFloat64()) * 0.001
		default:
			v = float32(rng.NormFloat64()) * 8000 // drives accumulator overflow
		}
		h.Data[idx] = half.FromFloat32(v)
	}
	h.Invalidate()
}

// sameBits reports bitwise equality of two matrices, NaNs included.
func sameBits(a, b *Matrix) (int, int, bool) {
	for j := 0; j < a.Cols; j++ {
		ca, cb := a.Col(j), b.Col(j)
		for i := range ca {
			if math.Float32bits(ca[i]) != math.Float32bits(cb[i]) {
				return i, j, false
			}
		}
	}
	return 0, 0, true
}

// TestHGemmTNMatchesReference pins the rewritten kernels — portable 4-wide,
// scalar tails, and (when the host has F16C) the assembly octet kernel —
// bit-for-bit to the original scalar algorithm, across shapes that exercise
// every tail combination, both accumulation modes, and a GOMAXPROCS sweep.
func TestHGemmTNMatchesReference(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	shapes := []struct{ m, n, k int }{
		{1, 1, 1}, {1, 1, 0}, {3, 5, 7}, {4, 8, 16}, {5, 9, 33},
		{8, 8, 64}, {13, 17, 96}, {16, 24, 128}, {33, 7, 40},
	}
	for _, procs := range []int{1, 4} {
		runtime.GOMAXPROCS(procs)
		for _, mode := range []AccumMode{AccumFP16, AccumFP32} {
			for si, sh := range shapes {
				rng := rand.New(rand.NewSource(int64(1000*si) + int64(mode)))
				A := NewHalfMatrix(sh.k, sh.m)
				B := NewHalfMatrix(sh.k, sh.n)
				fillHalfStress(A, rng)
				fillHalfStress(B, rng)
				got := NewMatrix(sh.m, sh.n)
				want := NewMatrix(sh.m, sh.n)
				HGemmTN(-2, A, B, mode, got)
				hgemmRef(-2, A, B, mode, want)
				if i, j, ok := sameBits(got, want); !ok {
					t.Fatalf("procs=%d mode=%v shape=%dx%dx%d: C[%d,%d] = %x, reference %x",
						procs, mode, sh.m, sh.n, sh.k, i, j,
						math.Float32bits(got.Col(j)[i]), math.Float32bits(want.Col(j)[i]))
				}
			}
		}
	}
}

// TestHGemmAsmMatchesPortable compares the assembly octet kernel against
// the portable block kernel directly, in-process, on stress inputs. On
// hosts without F16C (or under TEXID_NOASM=1) the two paths are the same
// code and the test still passes vacuously; CI runs the package both ways.
func TestHGemmAsmMatchesPortable(t *testing.T) {
	if !useF16C {
		t.Skip("no F16C asm path on this host/build")
	}
	const m, n, k = 12, 16, 120
	rng := rand.New(rand.NewSource(7))
	A := NewHalfMatrix(k, m)
	B := NewHalfMatrix(k, n)
	fillHalfStress(A, rng)
	fillHalfStress(B, rng)
	paw, aw := getF32(m * k)
	defer f32Pool.Put(paw)
	pbw, bw := getF32(n * k)
	defer f32Pool.Put(pbw)
	widenHalf(A, aw)
	widenHalf(B, bw)
	for _, mode := range []AccumMode{AccumFP16, AccumFP32} {
		gotM := NewMatrix(m, n)
		wantM := NewMatrix(m, n)
		for j0 := 0; j0 < n; j0 += 8 {
			hgemmOctAsm(-2, aw, bw, m, k, j0, mode, gotM)
		}
		hgemmBlockGo(-2, aw, bw, 0, m, k, 0, n, mode, wantM)
		if i, j, ok := sameBits(gotM, wantM); !ok {
			t.Fatalf("mode=%v: asm C[%d,%d] = %x, portable %x", mode, i, j,
				math.Float32bits(gotM.Col(j)[i]), math.Float32bits(wantM.Col(j)[i]))
		}
	}
}

// TestWidenColAsmMatchesTable pins the F16C widen lane to the decode table
// on every half bit pattern, NaN payloads included.
func TestWidenColAsmMatchesTable(t *testing.T) {
	if !useF16C {
		t.Skip("no F16C asm path on this host/build")
	}
	src := make(half.Vector, 1<<16)
	for i := range src {
		src[i] = half.Float16(i)
	}
	out := make([]float32, len(src))
	widenCol(out, src)
	for i, h := range src {
		if math.Float32bits(out[i]) != math.Float32bits(h.Float32()) {
			t.Fatalf("widenCol[%#04x] = %#08x, table = %#08x",
				i, math.Float32bits(out[i]), math.Float32bits(h.Float32()))
		}
	}
	// Odd lengths exercise the 8-wide asm body plus the scalar tail.
	for _, n := range []int{1, 7, 8, 9, 23, 64, 65} {
		widenCol(out[:n], src[1234:1234+n])
		for i := 0; i < n; i++ {
			if math.Float32bits(out[i]) != math.Float32bits(src[1234+i].Float32()) {
				t.Fatalf("widenCol len %d mismatch at %d", n, i)
			}
		}
	}
}

// TestRoundFastMatchesRound sweeps roundFast+roundHalfSlow (the kernel's
// inlined form) and roundHalf against half.Round on specials and a large
// deterministic sample.
func TestRoundFastMatchesRound(t *testing.T) {
	check := func(f float32) {
		t.Helper()
		want := math.Float32bits(half.Round(f))
		r, ok := roundFast(f)
		if !ok {
			r = roundHalfSlow(f)
		}
		if math.Float32bits(r) != want {
			t.Fatalf("roundFast chain(%x) = %x, half.Round = %x", math.Float32bits(f), math.Float32bits(r), want)
		}
		if got := math.Float32bits(roundHalf(f)); got != want {
			t.Fatalf("roundHalf(%x) = %x, half.Round = %x", math.Float32bits(f), got, want)
		}
	}
	for _, b := range []uint32{
		0, 0x80000000, 1, 0x00800000, 0x33000000, 0x33000001, 0x38800000,
		0x477FE000, 0x477FF000, 0x47800000, 0x7F800000, 0xFF800000,
		0x7FC00000, 0x7F800001, 0xFFC01234,
	} {
		check(math.Float32frombits(b))
	}
	x := uint32(0xCAFEBABE)
	for i := 0; i < 2_000_000; i++ {
		x = x*1664525 + 1013904223
		check(math.Float32frombits(x))
	}
}
