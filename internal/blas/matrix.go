// Package blas provides the dense linear-algebra kernels that back the
// simulated GPU's cuBLAS role: single-precision GEMM, half-precision GEMM
// with authentic FP16 accumulation semantics, squared-norm vectors, and the
// column-concatenation used to batch reference feature matrices.
//
// Matrices are column-major, matching both cuBLAS convention and the paper's
// layout: a feature matrix is d×m with one local feature per column, so a
// single feature is contiguous in memory and the 2-NN similarity matrix
// -2·RᵀQ is computed with GemmTN.
package blas

import "fmt"

// Matrix is a dense column-major float32 matrix. Element (i,j) lives at
// Data[j*Stride+i]. Stride >= Rows allows views into larger buffers, which
// the engine uses to slice batched reference stores without copying.
type Matrix struct {
	Rows, Cols int
	Stride     int
	Data       []float32
}

// NewMatrix allocates a zeroed rows×cols matrix with a tight stride.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("blas: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Stride: rows, Data: make([]float32, rows*cols)}
}

// FromColumns builds a rows×len(cols) matrix whose j-th column is cols[j].
// Every column must have length rows.
func FromColumns(rows int, cols [][]float32) *Matrix {
	m := NewMatrix(rows, len(cols))
	for j, c := range cols {
		if len(c) != rows {
			panic(fmt.Sprintf("blas: column %d has length %d, want %d", j, len(c), rows))
		}
		copy(m.Col(j), c)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[j*m.Stride+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[j*m.Stride+i] = v }

// Col returns column j as a slice sharing the matrix's storage.
func (m *Matrix) Col(j int) []float32 {
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// Slice returns a view of columns [from, to) sharing storage with m.
func (m *Matrix) Slice(from, to int) *Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("blas: slice [%d,%d) of %d columns", from, to, m.Cols))
	}
	return &Matrix{
		Rows:   m.Rows,
		Cols:   to - from,
		Stride: m.Stride,
		Data:   m.Data[from*m.Stride : from*m.Stride+(to-from-1)*m.Stride+m.Rows],
	}
}

// SliceView is Slice returning the view by value, for hot loops that must
// not heap-allocate the matrix header.
func (m *Matrix) SliceView(from, to int) Matrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("blas: slice [%d,%d) of %d columns", from, to, m.Cols))
	}
	return Matrix{
		Rows:   m.Rows,
		Cols:   to - from,
		Stride: m.Stride,
		Data:   m.Data[from*m.Stride : from*m.Stride+(to-from-1)*m.Stride+m.Rows],
	}
}

// Clone returns a deep copy with a tight stride.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		copy(c.Col(j), m.Col(j))
	}
	return c
}

// Bytes returns the FP32 storage footprint of the matrix contents.
func (m *Matrix) Bytes() int { return 4 * m.Rows * m.Cols }

// ConcatColumns concatenates the columns of the given matrices (all with the
// same row count) into one matrix. This is the batching step of Fig. 3: a
// batch of reference feature matrices R_1..R_B, each d×m, becomes a single
// d×(B·m) matrix so one large GEMM replaces B small ones.
func ConcatColumns(ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		return NewMatrix(0, 0)
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("blas: ConcatColumns row mismatch %d != %d", m.Rows, rows))
		}
		total += m.Cols
	}
	out := NewMatrix(rows, total)
	at := 0
	for _, m := range ms {
		for j := 0; j < m.Cols; j++ {
			copy(out.Col(at), m.Col(j))
			at++
		}
	}
	return out
}

// ConcatColumnsInto is ConcatColumns reusing dst's backing storage when it
// is large enough, for callers that rebuild the same concatenation every
// search (the multi-query batching path). dst is reshaped and returned.
func ConcatColumnsInto(dst *Matrix, ms ...*Matrix) *Matrix {
	if len(ms) == 0 {
		*dst = Matrix{}
		return dst
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("blas: ConcatColumns row mismatch %d != %d", m.Rows, rows))
		}
		total += m.Cols
	}
	if cap(dst.Data) < rows*total {
		dst.Data = make([]float32, rows*total)
	}
	dst.Rows, dst.Cols, dst.Stride = rows, total, rows
	dst.Data = dst.Data[:rows*total]
	at := 0
	for _, m := range ms {
		for j := 0; j < m.Cols; j++ {
			copy(dst.Col(at), m.Col(j))
			at++
		}
	}
	return dst
}

// SquaredNorms returns the per-column squared L2 norms of A: element j is
// ‖A_:,j‖². These are the N_R / N_Q vectors of Algorithm 1; storing them as
// length-m vectors rather than materializing full m×n matrices is the
// paper's memory-saving trick.
func SquaredNorms(A *Matrix) []float32 {
	return SquaredNormsInto(A, nil)
}

// SquaredNormsInto is SquaredNorms writing into dst's backing array when it
// has the capacity, so steady-state search paths can reuse one buffer.
func SquaredNormsInto(A *Matrix, dst []float32) []float32 {
	if cap(dst) < A.Cols {
		dst = make([]float32, A.Cols)
	}
	dst = dst[:A.Cols]
	for j := 0; j < A.Cols; j++ {
		col := A.Col(j)
		var s float32
		for _, v := range col {
			s += v * v
		}
		dst[j] = s
	}
	return dst
}
