//go:build amd64

package blas

import "texid/internal/half"

// hkernOct16 computes 4 A-columns × 8 B-columns of raw AᵀB dot products
// with full binary16 semantics (every product and every partial sum rounded
// to binary16 via F16C converts). See hgemm_amd64.s.
//
// a points at the first of 4 contiguous k-stride A columns (a + r*k floats);
// bo is the 8 B columns packed octet-interleaved, bo[l*8+c] = B[l, j0+c];
// out receives the 32 accumulators, out[r*8+c] = dot(A col r, B col c).
// alpha is applied by the caller.
//
//go:noescape
func hkernOct16(a *float32, k int, bo *float32, out *float32)

// hkernOct32 is hkernOct16 with float32 accumulation (products still
// rounded to binary16), the AccumFP32 tensor-core mode.
//
//go:noescape
func hkernOct32(a *float32, k int, bo *float32, out *float32)

// vcvtph2ps8 widens n (a multiple of 8) binary16 values to float32 with
// VCVTPH2PS, bit-identical to the decode table for every input including
// NaN payloads.
//
//go:noescape
func vcvtph2ps8(dst *float32, src *half.Float16, n int)

// haveF16C reports whether the CPU supports the F16C half-precision
// converts (CPUID.1:ECX bit 29). YMM state and the TEXID_NOASM escape are
// already covered by useAVX2, which gates useF16C alongside this.
func haveF16C() bool {
	_, _, c1, _ := cpuidx(1, 0)
	return c1&(1<<29) != 0
}

// useF16C gates the F16C HGemm kernels and the widen lane. It implies
// useAVX2, so TEXID_NOASM=1 disables both GEMM asm paths together.
var useF16C = useAVX2 && haveF16C()
