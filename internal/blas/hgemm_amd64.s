// AVX2/F16C micro-kernels for HGemmTN. See hgemm_amd64.go for the dispatch
// logic and hgemm.go for the bitwise-determinism contract: every C element
// is one sequential rounding chain over l = 0..k-1, identical to the
// portable kernel — VCVTPS2PH with imm8=0 is round-to-nearest-even and
// matches half.FromFloat32 bit-for-bit on every value these chains can
// produce (no f32 denormal ever arises from products of binary16 values,
// and both paths canonicalize NaNs to the same quiet patterns), while
// VCVTPH2PS is the exact widening the decode table implements.

#include "textflag.h"

// func hkernOct16(a *float32, k int, bo *float32, out *float32)
//
// 4(i)×8(j) raw dot products with binary16 product AND accumulate rounding
// (pre-Volta HGEMM). a: 4 contiguous k-stride columns, column r at a+r*k.
// bo: octet-interleaved B block, bo[l*8+c]. out: out[r*8+c] = chain(r, c).
// Four independent chains (Y0..Y3) are in flight per l step so the long
// mul→cvt→cvt→add→cvt→cvt dependency chains overlap.
TEXT ·hkernOct16(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ k+8(FP), CX
	MOVQ bo+16(FP), BX
	MOVQ out+24(FP), DI

	// A-column pointers: SI=a0, R8=a1, R9=a2, R10=a3 (stride k floats).
	LEAQ (SI)(CX*4), R8
	LEAQ (SI)(CX*8), R9
	LEAQ (R8)(CX*8), R10

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	TESTQ CX, CX
	JE   done16

loop16:
	VMOVUPS (BX), Y4 // B[l, j0..j0+7]

	VBROADCASTSS (SI), Y5
	VMULPS  Y4, Y5, Y5
	VCVTPS2PH $0, Y5, X5 // round product to binary16
	VCVTPH2PS X5, Y5
	VADDPS  Y5, Y0, Y0
	VCVTPS2PH $0, Y0, X0 // round partial sum to binary16
	VCVTPH2PS X0, Y0

	VBROADCASTSS (R8), Y6
	VMULPS  Y4, Y6, Y6
	VCVTPS2PH $0, Y6, X6
	VCVTPH2PS X6, Y6
	VADDPS  Y6, Y1, Y1
	VCVTPS2PH $0, Y1, X1
	VCVTPH2PS X1, Y1

	VBROADCASTSS (R9), Y7
	VMULPS  Y4, Y7, Y7
	VCVTPS2PH $0, Y7, X7
	VCVTPH2PS X7, Y7
	VADDPS  Y7, Y2, Y2
	VCVTPS2PH $0, Y2, X2
	VCVTPH2PS X2, Y2

	VBROADCASTSS (R10), Y8
	VMULPS  Y4, Y8, Y8
	VCVTPS2PH $0, Y8, X8
	VCVTPH2PS X8, Y8
	VADDPS  Y8, Y3, Y3
	VCVTPS2PH $0, Y3, X3
	VCVTPH2PS X3, Y3

	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $32, BX
	DECQ CX
	JNE  loop16

done16:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VZEROUPPER
	RET

// func hkernOct32(a *float32, k int, bo *float32, out *float32)
//
// Same tile with float32 accumulation (products still rounded to binary16):
// the Volta tensor-core AccumFP32 mode.
TEXT ·hkernOct32(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ k+8(FP), CX
	MOVQ bo+16(FP), BX
	MOVQ out+24(FP), DI

	LEAQ (SI)(CX*4), R8
	LEAQ (SI)(CX*8), R9
	LEAQ (R8)(CX*8), R10

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3

	TESTQ CX, CX
	JE   done32

loop32:
	VMOVUPS (BX), Y4

	VBROADCASTSS (SI), Y5
	VMULPS  Y4, Y5, Y5
	VCVTPS2PH $0, Y5, X5
	VCVTPH2PS X5, Y5
	VADDPS  Y5, Y0, Y0

	VBROADCASTSS (R8), Y6
	VMULPS  Y4, Y6, Y6
	VCVTPS2PH $0, Y6, X6
	VCVTPH2PS X6, Y6
	VADDPS  Y6, Y1, Y1

	VBROADCASTSS (R9), Y7
	VMULPS  Y4, Y7, Y7
	VCVTPS2PH $0, Y7, X7
	VCVTPH2PS X7, Y7
	VADDPS  Y7, Y2, Y2

	VBROADCASTSS (R10), Y8
	VMULPS  Y4, Y8, Y8
	VCVTPS2PH $0, Y8, X8
	VCVTPH2PS X8, Y8
	VADDPS  Y8, Y3, Y3

	ADDQ $4, SI
	ADDQ $4, R8
	ADDQ $4, R9
	ADDQ $4, R10
	ADDQ $32, BX
	DECQ CX
	JNE  loop32

done32:
	VMOVUPS Y0, (DI)
	VMOVUPS Y1, 32(DI)
	VMOVUPS Y2, 64(DI)
	VMOVUPS Y3, 96(DI)
	VZEROUPPER
	RET

// func vcvtph2ps8(dst *float32, src *half.Float16, n int)
//
// Widens n binary16 values (n a multiple of 8) to float32, 8 per step.
TEXT ·vcvtph2ps8(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	SHRQ $3, CX
	JE   wdone

wloop:
	VCVTPH2PS (SI), Y0
	VMOVUPS Y0, (DI)
	ADDQ $16, SI
	ADDQ $32, DI
	DECQ CX
	JNE  wloop

wdone:
	VZEROUPPER
	RET
