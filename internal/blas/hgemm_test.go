package blas

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/half"
)

func TestHalfFromMatrixOverflowCount(t *testing.T) {
	m := FromColumns(2, [][]float32{{1e9, 1}, {2, -1e9}})
	h, overflow := HalfFromMatrix(m, 1)
	if overflow != 2 {
		t.Fatalf("overflow = %d, want 2", overflow)
	}
	if n := h.Data.CountInf(); n != 2 {
		t.Fatalf("CountInf = %d, want 2", n)
	}
	_, overflow = HalfFromMatrix(m, 1e-6)
	if overflow != 0 {
		t.Fatalf("scaled overflow = %d, want 0", overflow)
	}
}

func TestHGemmMatchesFloatGemmForSmallValues(t *testing.T) {
	// With small well-conditioned inputs, FP16 GEMM should track FP32 GEMM
	// to within binary16 precision.
	rng := rand.New(rand.NewSource(10))
	d, m, n := 32, 12, 9
	A := randomMatrix(rng, d, m, 0.25)
	B := randomMatrix(rng, d, n, 0.25)
	hA, _ := HalfFromMatrix(A, 1)
	hB, _ := HalfFromMatrix(B, 1)

	want := NewMatrix(m, n)
	GemmTN(-2, hA.Float32(), hB.Float32(), 0, want)

	for _, mode := range []AccumMode{AccumFP16, AccumFP32} {
		got := NewMatrix(m, n)
		HGemmTN(-2, hA, hB, mode, got)
		for i := range got.Data {
			w := float64(want.Data[i])
			g := float64(got.Data[i])
			tol := math.Max(1e-2, math.Abs(w)*float64(d)/2048)
			if math.Abs(g-w) > tol {
				t.Fatalf("%v: element %d = %g, want %g (tol %g)", mode, i, g, w, tol)
			}
		}
	}
}

func TestHGemmFP16AccumulationOverflows(t *testing.T) {
	// Unscaled OpenCV-convention SIFT descriptors (L2 norm 512) make RᵀQ
	// entries up to 512² = 262144, beyond binary16 range: the FP16
	// accumulator must produce Inf, while FP32 accumulation survives.
	d := 128
	col := make([]float32, d)
	v := float32(512) / float32(math.Sqrt(float64(d)))
	for i := range col {
		col[i] = v
	}
	A := FromColumns(d, [][]float32{col})
	hA, overflow := HalfFromMatrix(A, 1)
	if overflow != 0 {
		t.Fatalf("operands themselves overflowed: %d", overflow)
	}
	C := NewMatrix(1, 1)
	HGemmTN(-2, hA, hA, AccumFP16, C)
	if !math.IsInf(float64(C.At(0, 0)), -1) {
		t.Fatalf("FP16 accumulate = %g, want -Inf", C.At(0, 0))
	}
	HGemmTN(-2, hA, hA, AccumFP32, C)
	if math.IsInf(float64(C.At(0, 0)), 0) {
		t.Fatalf("FP32 accumulate overflowed: %g", C.At(0, 0))
	}
	// With the paper's production scale factor 2^-7, even FP16
	// accumulation stays finite: 262144·2^-14 = 16.
	s := half.PowerOfTwoScale(-7)
	hS, _ := HalfFromMatrix(A, s)
	HGemmTN(-2, hS, hS, AccumFP16, C)
	got := C.At(0, 0)
	if math.IsInf(float64(got), 0) || math.Abs(float64(got)+32) > 1 {
		t.Fatalf("scaled FP16 accumulate = %g, want ~-32", got)
	}
}

func TestHGemmDotMatchesHalfDot(t *testing.T) {
	// The GEMM inner loop must agree exactly with half.Dot's FMA chain.
	rng := rand.New(rand.NewSource(11))
	d := 64
	a := make(half.Vector, d)
	b := make(half.Vector, d)
	for i := 0; i < d; i++ {
		a[i] = half.FromFloat32(rng.Float32()*4 - 2)
		b[i] = half.FromFloat32(rng.Float32()*4 - 2)
	}
	hA := &HalfMatrix{Rows: d, Cols: 1, Stride: d, Data: a}
	hB := &HalfMatrix{Rows: d, Cols: 1, Stride: d, Data: b}
	C := NewMatrix(1, 1)
	HGemmTN(1, hA, hB, AccumFP16, C)
	want := half.Dot(a, b).Float32()
	if C.At(0, 0) != want {
		t.Fatalf("HGemm dot = %g, half.Dot = %g", C.At(0, 0), want)
	}
}

func TestHalfMatrixSliceSharesStorage(t *testing.T) {
	m := NewHalfMatrix(2, 3)
	m.Data[2*1+0] = half.FromFloat32(7) // element (0,1)
	v := m.Slice(1, 3)
	if v.At(0, 0) != 7 {
		t.Fatalf("slice view At(0,0) = %g, want 7", v.At(0, 0))
	}
	if got := m.Float32().At(0, 1); got != 7 {
		t.Fatalf("Float32 widen = %g", got)
	}
}

func TestCompressionError(t *testing.T) {
	// Average relative distance error with scale 2^-7 on unit-norm-512
	// style features should be well under 1% (Table 2 reports ~0.1%).
	rng := rand.New(rand.NewSource(12))
	d, m, n := 128, 32, 32
	R := randomSIFTLike(rng, d, m)
	Q := randomSIFTLike(rng, d, n)

	exact := NewMatrix(m, n)
	GemmTN(-2, R, Q, 0, exact)
	nr := SquaredNorms(R)
	nq := SquaredNorms(Q)
	AddRowVector(exact, nr)
	for j := 0; j < n; j++ {
		AddColScalar(exact, j, m, nq[j])
	}

	s := half.PowerOfTwoScale(-7)
	hR, _ := HalfFromMatrix(R, s)
	hQ, _ := HalfFromMatrix(Q, s)
	approx := NewMatrix(m, n)
	HGemmTN(-2, hR, hQ, AccumFP16, approx)
	inv := 1 / (s * s)
	var relSum float64
	count := 0
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			ρ2 := approx.At(i, j)*inv + nr[i] + nq[j]
			w := exact.At(i, j)
			if w <= 0 {
				continue
			}
			relSum += math.Abs(float64(ρ2-w)) / float64(w)
			count++
		}
	}
	if count == 0 {
		t.Fatal("no valid distances")
	}
	if avg := relSum / float64(count); avg > 0.01 {
		t.Fatalf("average compression error = %.4f%%, want < 1%%", avg*100)
	}
}

// randomSIFTLike produces columns that mimic OpenCV SIFT descriptors:
// non-negative, L2 norm 512.
func randomSIFTLike(rng *rand.Rand, d, cols int) *Matrix {
	m := NewMatrix(d, cols)
	for j := 0; j < cols; j++ {
		col := m.Col(j)
		var norm float64
		for i := range col {
			col[i] = rng.Float32()
			norm += float64(col[i]) * float64(col[i])
		}
		scale := float32(512 / math.Sqrt(norm))
		for i := range col {
			col[i] *= scale
		}
	}
	return m
}

func BenchmarkHGemmTN256(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	A := randomMatrix(rng, 128, 256, 0.1)
	B := randomMatrix(rng, 128, 256, 0.1)
	hA, _ := HalfFromMatrix(A, 1)
	hB, _ := HalfFromMatrix(B, 1)
	C := NewMatrix(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HGemmTN(-2, hA, hB, AccumFP16, C)
	}
}

func TestRoundHalfMatchesHalfRound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	check := func(f float32) {
		t.Helper()
		got := roundHalf(f)
		want := half.Round(f)
		if math.Float32bits(got) != math.Float32bits(want) &&
			!(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
			t.Fatalf("roundHalf(%g) = %g, half.Round = %g", f, got, want)
		}
	}
	for _, f := range []float32{0, 1, -1, 65504, 65520, 70000, 1e-8, 6.1e-5, -6.1e-5, float32(math.Inf(1))} {
		check(f)
	}
	for i := 0; i < 100000; i++ {
		check(math.Float32frombits(rng.Uint32()))
	}
}
