//go:build !amd64

package blas

import "texid/internal/half"

// Non-amd64 builds always take the portable HGemm kernels in hgemm.go.
const useF16C = false

func hkernOct16(a *float32, k int, bo *float32, out *float32) {
	panic("blas: asm kernel on non-amd64 build")
}

func hkernOct32(a *float32, k int, bo *float32, out *float32) {
	panic("blas: asm kernel on non-amd64 build")
}

func vcvtph2ps8(dst *float32, src *half.Float16, n int) {
	panic("blas: asm kernel on non-amd64 build")
}
