package blas

// Panel is an alloc-free cache of a widened binary16 operand: the tight
// k-stride float32 staging (dst[j*k+i] = src[i,j]) that HGemmTN otherwise
// rebuilds from scratch on every call. The engine keeps one Panel per
// resident reference batch so steady-state searches stop re-widening the
// same matrix thousands of times.
//
// A cached staging is valid only for the exact (matrix, generation, shape)
// it was built from: For compares the source pointer, the content
// generation stamped by HalfMatrix.Invalidate, and the dimensions, and
// rebuilds into the same pooled buffer when any of them changed. The
// generation check is what ties invalidation to the existing write paths —
// HalfFromMatrixInto and ConcatHalfColumnsInto restamp the matrix, so a
// batch rebuilt in place can never be served from a stale panel.
//
// Panel is not internally synchronized: it is owned by whoever owns the
// source matrix and must be confined by the same lock that guards writes
// to it (the engine's index RWMutex / exec mutex). The backing buffer
// comes from the package scratch pool; call Release when the source
// matrix is dropped so the floats return to the pool.
//
//texlint:guards Panel{buf,data,src,gen,rows,cols} owner-confined: guarded by the mutex that guards the source HalfMatrix (engine index RWMutex); For and Release must not race with each other or with writes to src
type Panel struct {
	buf  *[]float32 // pooled backing allocation (f32Pool)
	data []float32  // buf sized to rows*cols
	src  *HalfMatrix
	gen  uint64
	rows int
	cols int
}

// For returns the widened k-stride staging of h, rebuilding it only when h
// is not the matrix the panel was built from, h's content generation
// changed, or its shape changed. The fast path is three compares and no
// allocation.
//
//texlint:hotpath
func (p *Panel) For(h *HalfMatrix) []float32 {
	if p.src == h && p.gen == h.gen && p.rows == h.Rows && p.cols == h.Cols && p.buf != nil {
		return p.data
	}
	p.Release()
	p.buf, p.data = getF32(h.Rows * h.Cols)
	widenHalf(h, p.data)
	p.src, p.gen, p.rows, p.cols = h, h.gen, h.Rows, h.Cols
	return p.data
}

// Valid reports whether the panel currently caches h's staging, without
// building anything.
func (p *Panel) Valid(h *HalfMatrix) bool {
	return p.src == h && p.gen == h.gen && p.rows == h.Rows && p.cols == h.Cols && p.buf != nil
}

// Release returns the backing buffer to the scratch pool and resets the
// panel to its zero state. Safe on an empty panel.
func (p *Panel) Release() {
	if p.buf != nil {
		f32Pool.Put(p.buf)
	}
	*p = Panel{}
}

// HGemmTNPanel is HGemmTN with the left operand's widened staging served
// from (and cached into) panel. A must be the matrix the caller keys the
// panel to — typically the resident reference matrix — and the call must
// hold whatever lock confines the panel (see Panel). B is staged into
// pooled scratch per call as usual. Output bits are identical to HGemmTN.
//
//texlint:hotpath
func HGemmTNPanel(alpha float32, panel *Panel, A, B *HalfMatrix, mode AccumMode, C *Matrix) {
	m, n, k := hgemmShape(A, B, C)
	if m == 0 || n == 0 {
		return
	}
	aw := panel.For(A)
	pb, bw := getF32(n * k)
	defer f32Pool.Put(pb)
	widenHalf(B, bw)
	hgemmCore(alpha, aw, bw, m, n, k, mode, C)
}
