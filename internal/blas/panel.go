package blas

import "fmt"

// Panel is an alloc-free cache of a widened binary16 operand: the tight
// k-stride float32 staging (dst[j*k+i] = src[i,j]) that HGemmTN otherwise
// rebuilds from scratch on every call. The engine keeps one Panel per
// resident reference batch so steady-state searches stop re-widening the
// same matrix thousands of times.
//
// A cached staging is valid only for the exact (matrix, generation, shape)
// it was built from: For compares the source pointer, the content
// generation stamped by HalfMatrix.Invalidate, and the dimensions, and
// rebuilds into the same pooled buffer when any of them changed. The
// generation check is what ties invalidation to the existing write paths —
// HalfFromMatrixInto and ConcatHalfColumnsInto restamp the matrix, so a
// batch rebuilt in place can never be served from a stale panel.
//
// Panel is not internally synchronized: it is owned by whoever owns the
// source matrix and must be confined by the same lock that guards writes
// to it (the engine's index RWMutex / exec mutex). The backing buffer
// comes from the package scratch pool; call Release when the source
// matrix is dropped so the floats return to the pool.
//
//texlint:guards Panel{buf,data,src,gen,rows,cols} owner-confined: guarded by the mutex that guards the source HalfMatrix (engine index RWMutex); For and Release must not race with each other or with writes to src
type Panel struct {
	buf  *[]float32 // pooled backing allocation (f32Pool)
	data []float32  // buf sized to rows*cols
	src  *HalfMatrix
	gen  uint64
	rows int
	cols int
}

// For returns the widened k-stride staging of h, rebuilding it only when h
// is not the matrix the panel was built from, h's content generation
// changed, or its shape changed. The fast path is three compares and no
// allocation.
//
//texlint:hotpath
func (p *Panel) For(h *HalfMatrix) []float32 {
	if p.src == h && p.gen == h.gen && p.rows == h.Rows && p.cols == h.Cols && p.buf != nil {
		return p.data
	}
	p.Release()
	p.buf, p.data = getF32(h.Rows * h.Cols)
	widenHalf(h, p.data)
	p.src, p.gen, p.rows, p.cols = h, h.gen, h.Rows, h.Cols
	return p.data
}

// Valid reports whether the panel currently caches h's staging, without
// building anything.
func (p *Panel) Valid(h *HalfMatrix) bool {
	return p.src == h && p.gen == h.gen && p.rows == h.Rows && p.cols == h.Cols && p.buf != nil
}

// Release returns the backing buffer to the scratch pool and resets the
// panel to its zero state. Safe on an empty panel.
func (p *Panel) Release() {
	if p.buf != nil {
		f32Pool.Put(p.buf)
	}
	*p = Panel{}
}

// HGemmTNPanel is HGemmTN with the left operand's widened staging served
// from (and cached into) panel. A must be the matrix the caller keys the
// panel to — typically the resident reference matrix — and the call must
// hold whatever lock confines the panel (see Panel). B is staged into
// pooled scratch per call as usual. Output bits are identical to HGemmTN.
//
//texlint:hotpath
func HGemmTNPanel(alpha float32, panel *Panel, A, B *HalfMatrix, mode AccumMode, C *Matrix) {
	m, n, k := hgemmShape(A, B, C)
	if m == 0 || n == 0 {
		return
	}
	aw := panel.For(A)
	pb, bw := getF32(n * k)
	defer f32Pool.Put(pb)
	widenHalf(B, bw)
	hgemmCore(alpha, aw, bw, m, n, k, mode, C)
}

// StageHalf widens h into dst as the k-stride float32 staging the HGemmTN
// kernels consume (dst[j*k+i] = widen(h[i,j])), growing dst only when its
// capacity is insufficient, and returns the resized slice. It lets a caller
// widen a query operand once and run many HGemmTNStaged calls against it —
// the candidate-pruned rerank stages the query per batch instead of per
// candidate slot.
//
//texlint:hotpath
func StageHalf(h *HalfMatrix, dst []float32) []float32 {
	need := h.Rows * h.Cols
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	widenHalf(h, dst)
	return dst
}

// HGemmTNStaged runs the HGemmTN kernel directly over pre-widened k-stride
// stagings: aw holds m columns and bw n columns of k floats each (as built
// by StageHalf or cached in a Panel). Because hgemmCore only ever consumes
// the widened staging — the binary16 bits themselves are not re-read — a
// contiguous column slice of a batch Panel fed through this entry point
// produces output bits identical to the same columns of a full
// HGemmTNPanel call. That slice-invariance is what lets the Hamming
// prefilter rerank a gathered candidate subset without re-widening or
// copying the resident reference operand.
//
//texlint:hotpath
func HGemmTNStaged(alpha float32, aw, bw []float32, m, n, k int, mode AccumMode, C *Matrix) {
	if k > 0 && (len(aw) < m*k || len(bw) < n*k) {
		panic(fmt.Sprintf("blas: HGemmTNStaged stagings %d/%d too short for %dx%dx%d", len(aw), len(bw), m, n, k))
	}
	if C.Rows != m || C.Cols != n {
		panic(fmt.Sprintf("blas: HGemmTNStaged output %dx%d, want %dx%d", C.Rows, C.Cols, m, n))
	}
	if m == 0 || n == 0 {
		return
	}
	hgemmCore(alpha, aw, bw, m, n, k, mode, C)
}
