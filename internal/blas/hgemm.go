package blas

import (
	"fmt"
	"math"
	"sync/atomic"

	"texid/internal/half"
)

// AccumMode selects the accumulator precision of HGemmTN.
type AccumMode int

const (
	// AccumFP16 rounds every product and every partial sum to binary16,
	// matching pre-Volta HGEMM (Tesla P100). Overflow produces ±Inf in the
	// output, which is the failure mode Table 2's scale-factor study guards
	// against.
	AccumFP16 AccumMode = iota
	// AccumFP32 rounds products to binary16 but accumulates in float32,
	// matching Volta tensor-core HMMA semantics (V100 w/ tensor cores).
	AccumFP32
)

func (m AccumMode) String() string {
	switch m {
	case AccumFP16:
		return "fp16-accumulate"
	case AccumFP32:
		return "fp32-accumulate"
	}
	return fmt.Sprintf("AccumMode(%d)", int(m))
}

// HalfMatrix is a dense column-major binary16 matrix, the storage format of
// reference feature matrices in simulated device memory.
//
// Every content-changing operation in this package (NewHalfMatrix,
// HalfFromMatrixInto, ConcatHalfColumnsInto) stamps the matrix with a fresh
// generation from a global counter; Panel uses the stamp to decide whether
// a cached widened copy is still valid. Code that mutates Data directly
// must call Invalidate afterwards or cached panels will serve stale floats.
type HalfMatrix struct {
	Rows, Cols int
	Stride     int
	Data       half.Vector

	gen uint64 // content generation; see Invalidate
}

// halfGen hands out content generations for HalfMatrix. Generation 0 is
// reserved for zero-value matrices so a stamped matrix never collides with
// an unstamped literal.
var halfGen atomic.Uint64

// Invalidate stamps the matrix with a fresh content generation, forcing any
// Panel cached from it to re-widen on next use. The package's own
// constructors and converters call it; external code only needs it after
// writing to Data directly.
func (m *HalfMatrix) Invalidate() { m.gen = halfGen.Add(1) }

// NewHalfMatrix allocates a zeroed rows×cols binary16 matrix.
func NewHalfMatrix(rows, cols int) *HalfMatrix {
	h := &HalfMatrix{Rows: rows, Cols: cols, Stride: rows, Data: make(half.Vector, rows*cols)}
	h.Invalidate()
	return h
}

// HalfFromMatrix converts a float32 matrix to binary16 after multiplying by
// scale. It returns the converted matrix and the number of elements that
// overflowed to ±Inf.
func HalfFromMatrix(m *Matrix, scale float32) (*HalfMatrix, int) {
	h := &HalfMatrix{}
	overflow := HalfFromMatrixInto(m, scale, h)
	return h, overflow
}

// HalfFromMatrixInto is HalfFromMatrix converting into h, reusing its
// backing storage when large enough. It returns the overflow count.
func HalfFromMatrixInto(m *Matrix, scale float32, h *HalfMatrix) int {
	if cap(h.Data) < m.Rows*m.Cols {
		h.Data = make(half.Vector, m.Rows*m.Cols)
	}
	h.Rows, h.Cols, h.Stride = m.Rows, m.Cols, m.Rows
	h.Data = h.Data[:m.Rows*m.Cols]
	h.Invalidate()
	overflow := 0
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := h.Col(j)
		for i, v := range src {
			x := half.FromFloat32(v * scale)
			if x.IsInf() {
				overflow++
			}
			dst[i] = x
		}
	}
	return overflow
}

// ConcatHalfColumnsInto concatenates binary16 matrices column-wise into
// dst, reusing its backing storage when large enough.
func ConcatHalfColumnsInto(dst *HalfMatrix, ms ...*HalfMatrix) *HalfMatrix {
	if len(ms) == 0 {
		*dst = HalfMatrix{}
		return dst
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("blas: concat row mismatch %d != %d", m.Rows, rows))
		}
		total += m.Cols
	}
	if cap(dst.Data) < rows*total {
		dst.Data = make(half.Vector, rows*total)
	}
	dst.Rows, dst.Cols, dst.Stride = rows, total, rows
	dst.Data = dst.Data[:rows*total]
	dst.Invalidate()
	at := 0
	for _, m := range ms {
		for j := 0; j < m.Cols; j++ {
			copy(dst.Col(at), m.Col(j))
			at++
		}
	}
	return dst
}

// Col returns column j as a slice sharing the matrix's storage.
func (m *HalfMatrix) Col(j int) half.Vector {
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// At returns element (i, j) widened to float32.
func (m *HalfMatrix) At(i, j int) float32 { return m.Data[j*m.Stride+i].Float32() }

// Bytes returns the binary16 storage footprint.
func (m *HalfMatrix) Bytes() int { return 2 * m.Rows * m.Cols }

// Float32 widens the matrix to float32.
func (m *HalfMatrix) Float32() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		widenCol(out.Col(j), m.Col(j))
	}
	return out
}

// Slice returns a view of columns [from, to) sharing storage with m. The
// view shares m's content generation: it stays valid as long as m is not
// restamped, and a Panel cached from the view is invalidated by the same
// writes that invalidate one cached from m.
func (m *HalfMatrix) Slice(from, to int) *HalfMatrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("blas: slice [%d,%d) of %d columns", from, to, m.Cols))
	}
	return &HalfMatrix{
		Rows:   m.Rows,
		Cols:   to - from,
		Stride: m.Stride,
		Data:   m.Data[from*m.Stride : from*m.Stride+(to-from-1)*m.Stride+m.Rows],
		gen:    m.gen,
	}
}

// HGemmTN computes C = alpha·AᵀB into a float32 output matrix, where A and B
// hold binary16 operands. Products are always formed from the binary16
// operand values; the accumulator behaves per mode. With AccumFP16 the
// result of every fused step is itself rounded to binary16, so C's entries
// are exactly representable binary16 values (possibly ±Inf on overflow).
//
// alpha is applied after accumulation in float32, matching cuBLAS's
// epilogue, so alpha = -2 cannot itself overflow the FP16 accumulator.
//
// Both operands are staged into pooled float32 scratch per call; when the
// left operand is a long-lived resident matrix, HGemmTNPanel skips the A
// staging by reusing a cached Panel.
//
//texlint:hotpath
func HGemmTN(alpha float32, A, B *HalfMatrix, mode AccumMode, C *Matrix) {
	m, n, k := hgemmShape(A, B, C)
	if m == 0 || n == 0 {
		return
	}
	pa, aw := getF32(m * k)
	defer f32Pool.Put(pa)
	widenHalf(A, aw)
	pb, bw := getF32(n * k)
	defer f32Pool.Put(pb)
	widenHalf(B, bw)
	hgemmCore(alpha, aw, bw, m, n, k, mode, C)
}

// hgemmShape validates the operand shapes and returns (m, n, k).
func hgemmShape(A, B *HalfMatrix, C *Matrix) (m, n, k int) {
	if A.Rows != B.Rows {
		panic(fmt.Sprintf("blas: HGemmTN inner dimension mismatch %d != %d", A.Rows, B.Rows))
	}
	if C.Rows != A.Cols || C.Cols != B.Cols {
		panic(fmt.Sprintf("blas: HGemmTN output %dx%d, want %dx%d", C.Rows, C.Cols, A.Cols, B.Cols))
	}
	return A.Cols, B.Cols, A.Rows
}

// hgemmCore runs the blocked kernel over pre-widened k-stride operands.
// Work is partitioned into fixed 8-column blocks of B; every output element
// is one sequential rounding chain over k inside its block, so the result
// is bitwise independent of GOMAXPROCS and of which kernel (asm or
// portable) computes it.
//
//texlint:hotpath
func hgemmCore(alpha float32, aw, bw []float32, m, n, k int, mode AccumMode, C *Matrix) {
	const jBlock = 8
	Parallel((n+jBlock-1)/jBlock, func(blk int) {
		j0 := blk * jBlock
		j1 := min(j0+jBlock, n)
		if useF16C && j1-j0 == jBlock && m >= 4 && k > 0 {
			hgemmOctAsm(alpha, aw, bw, m, k, j0, mode, C)
			return
		}
		hgemmBlockGo(alpha, aw, bw, 0, m, k, j0, j1, mode, C)
	})
}

// hgemmOctAsm runs one full 8-column B octet through the F16C assembly
// kernels. The octet is packed interleaved (bo[l*8+c] = B[l, j0+c]) into
// pooled scratch so each kernel invocation streams one cache line per k
// step; A columns are read in place via broadcasts. The m%4 row tail falls
// back to the portable kernel, which is bit-identical per element.
func hgemmOctAsm(alpha float32, aw, bw []float32, m, k, j0 int, mode AccumMode, C *Matrix) {
	pbo, bo := getF32(k * 8)
	defer f32Pool.Put(pbo)
	for c := 0; c < 8; c++ {
		col := bw[(j0+c)*k : (j0+c)*k+k]
		for l, v := range col {
			bo[l*8+c] = v
		}
	}
	var out [32]float32
	i := 0
	for ; i+4 <= m; i += 4 {
		if mode == AccumFP16 {
			hkernOct16(&aw[i*k], k, &bo[0], &out[0])
		} else {
			hkernOct32(&aw[i*k], k, &bo[0], &out[0])
		}
		for c := 0; c < 8; c++ {
			ccol := C.Col(j0 + c)
			ccol[i+0] = alpha * out[0*8+c]
			ccol[i+1] = alpha * out[1*8+c]
			ccol[i+2] = alpha * out[2*8+c]
			ccol[i+3] = alpha * out[3*8+c]
		}
	}
	if i < m {
		hgemmBlockGo(alpha, aw, bw, i, m, k, j0, j0+8, mode, C)
	}
}

// hgemmBlockGo is the portable kernel for B columns [j0, j1) and A columns
// [i0, m). Four independent accumulator chains run per step so the
// latency-bound round chain overlaps across outputs; the chain order over k
// within each output is exactly the scalar order, so results are
// bit-identical to dotFP16/dotProductsFP16 and to the asm kernel.
func hgemmBlockGo(alpha float32, aw, bw []float32, i0, m, k, j0, j1 int, mode AccumMode, C *Matrix) {
	for j := j0; j < j1; j++ {
		bcol := bw[j*k : j*k+k]
		ccol := C.Col(j)
		i := i0
		for ; i+4 <= m; i += 4 {
			a0 := aw[(i+0)*k : (i+0)*k+k]
			a1 := aw[(i+1)*k : (i+1)*k+k]
			a2 := aw[(i+2)*k : (i+2)*k+k]
			a3 := aw[(i+3)*k : (i+3)*k+k]
			a0 = a0[:len(bcol)]
			a1 = a1[:len(bcol)]
			a2 = a2[:len(bcol)]
			a3 = a3[:len(bcol)]
			// The loops below spell out d = roundHalf(d + roundHalf(a*b))
			// through roundFast so the bit trick inlines (roundHalf itself
			// is over the inline budget because of its escape call); the
			// escape calls stay here in the kernel where calls are free.
			var d0, d1, d2, d3 float32
			if mode == AccumFP16 {
				for l, bv := range bcol {
					p0, ok0 := roundFast(a0[l] * bv)
					p1, ok1 := roundFast(a1[l] * bv)
					p2, ok2 := roundFast(a2[l] * bv)
					p3, ok3 := roundFast(a3[l] * bv)
					if !ok0 {
						p0 = roundHalfSlow(p0)
					}
					if !ok1 {
						p1 = roundHalfSlow(p1)
					}
					if !ok2 {
						p2 = roundHalfSlow(p2)
					}
					if !ok3 {
						p3 = roundHalfSlow(p3)
					}
					s0, ok0 := roundFast(d0 + p0)
					s1, ok1 := roundFast(d1 + p1)
					s2, ok2 := roundFast(d2 + p2)
					s3, ok3 := roundFast(d3 + p3)
					if !ok0 {
						s0 = roundHalfSlow(s0)
					}
					if !ok1 {
						s1 = roundHalfSlow(s1)
					}
					if !ok2 {
						s2 = roundHalfSlow(s2)
					}
					if !ok3 {
						s3 = roundHalfSlow(s3)
					}
					d0, d1, d2, d3 = s0, s1, s2, s3
				}
			} else {
				for l, bv := range bcol {
					p0, ok0 := roundFast(a0[l] * bv)
					p1, ok1 := roundFast(a1[l] * bv)
					p2, ok2 := roundFast(a2[l] * bv)
					p3, ok3 := roundFast(a3[l] * bv)
					if !ok0 {
						p0 = roundHalfSlow(p0)
					}
					if !ok1 {
						p1 = roundHalfSlow(p1)
					}
					if !ok2 {
						p2 = roundHalfSlow(p2)
					}
					if !ok3 {
						p3 = roundHalfSlow(p3)
					}
					d0 += p0
					d1 += p1
					d2 += p2
					d3 += p3
				}
			}
			ccol[i+0] = alpha * d0
			ccol[i+1] = alpha * d1
			ccol[i+2] = alpha * d2
			ccol[i+3] = alpha * d3
		}
		for ; i < m; i++ {
			var d float32
			if mode == AccumFP16 {
				d = dotFP16(aw[i*k:i*k+k], bcol)
			} else {
				d = dotProductsFP16(aw[i*k:i*k+k], bcol)
			}
			ccol[i] = alpha * d
		}
	}
}

// widenHalf stages h into dst as tight k-stride float32 columns:
// dst[j*k+i] = h[i,j] widened.
func widenHalf(h *HalfMatrix, dst []float32) {
	k := h.Rows
	const wBlock = 32
	Parallel((h.Cols+wBlock-1)/wBlock, func(b int) {
		for j := b * wBlock; j < min((b+1)*wBlock, h.Cols); j++ {
			widenCol(dst[j*k:j*k+k], h.Col(j))
		}
	})
}

// widenCol widens one binary16 column into out. The F16C lane (VCVTPH2PS)
// and the decode-table fallback produce identical bit patterns for every
// input, NaN payloads included, so the choice is invisible to callers.
func widenCol(out []float32, src half.Vector) {
	if useF16C && len(src) >= 8 {
		n8 := len(src) &^ 7
		vcvtph2ps8(&out[0], &src[0], n8)
		src, out = src[n8:], out[n8:]
	}
	for i, x := range src {
		out[i] = x.Float32()
	}
}

// dotFP16 computes a dot product with full binary16 semantics: each product
// and each running sum is rounded to binary16. Operands must already be
// exactly representable in binary16 (they come from widened HalfMatrix
// storage).
func dotFP16(a, b []float32) float32 {
	var acc float32
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] // bounds-check elimination, mirroring dot4
	for i, av := range a {
		acc = roundHalf(acc + roundHalf(av*b[i]))
	}
	return acc
}

// dotProductsFP16 rounds each product to binary16 but accumulates in
// float32 (tensor-core style).
func dotProductsFP16(a, b []float32) float32 {
	var acc float32
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] // bounds-check elimination, mirroring dot4
	for i, av := range a {
		acc += roundHalf(av * b[i])
	}
	return acc
}

// roundHalf rounds a float32 through binary16 and back, bit-identical to
// half.Round (TestRoundHalfMatchesHalfRound pins them together). It is the
// convenience form for the scalar tails; the unrolled kernel uses
// roundFast/roundHalfSlow directly so the bit trick inlines there — a
// function that both computes the trick and calls the escape can never fit
// the inline budget, which is why the pair exists.
func roundHalf(f float32) float32 {
	r, ok := roundFast(f)
	if !ok {
		return roundHalfSlow(f)
	}
	return r
}

// roundFast applies half.Round's normal-range RNE bit trick, including the
// overflow-to-±Inf clamp. ok = false means f is outside the trick's domain
// (binary16-subnormal magnitude, zero, Inf, or NaN) and the caller must
// finish the job with roundHalfSlow. Kept escape-free and under the inline
// budget on purpose — the GEMM inner loops rely on it inlining.
func roundFast(f float32) (float32, bool) {
	b := math.Float32bits(f)
	if (b>>23)&0xFF-113 >= 142 {
		return f, false
	}
	r := (b + 0xFFF + ((b >> 13) & 1)) &^ 0x1FFF
	if r&0x7FFFFFFF >= 0x47800000 {
		r = b&0x80000000 | 0x7F800000
	}
	return math.Float32frombits(r), true
}

// roundHalfSlow handles the values roundFast rejects, exactly.
//
//go:noinline
func roundHalfSlow(f float32) float32 { return half.Round(f) }
