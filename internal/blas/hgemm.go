package blas

import (
	"fmt"
	"math"

	"texid/internal/half"
)

// AccumMode selects the accumulator precision of HGemmTN.
type AccumMode int

const (
	// AccumFP16 rounds every product and every partial sum to binary16,
	// matching pre-Volta HGEMM (Tesla P100). Overflow produces ±Inf in the
	// output, which is the failure mode Table 2's scale-factor study guards
	// against.
	AccumFP16 AccumMode = iota
	// AccumFP32 rounds products to binary16 but accumulates in float32,
	// matching Volta tensor-core HMMA semantics (V100 w/ tensor cores).
	AccumFP32
)

func (m AccumMode) String() string {
	switch m {
	case AccumFP16:
		return "fp16-accumulate"
	case AccumFP32:
		return "fp32-accumulate"
	}
	return fmt.Sprintf("AccumMode(%d)", int(m))
}

// HalfMatrix is a dense column-major binary16 matrix, the storage format of
// reference feature matrices in simulated device memory.
type HalfMatrix struct {
	Rows, Cols int
	Stride     int
	Data       half.Vector
}

// NewHalfMatrix allocates a zeroed rows×cols binary16 matrix.
func NewHalfMatrix(rows, cols int) *HalfMatrix {
	return &HalfMatrix{Rows: rows, Cols: cols, Stride: rows, Data: make(half.Vector, rows*cols)}
}

// HalfFromMatrix converts a float32 matrix to binary16 after multiplying by
// scale. It returns the converted matrix and the number of elements that
// overflowed to ±Inf.
func HalfFromMatrix(m *Matrix, scale float32) (*HalfMatrix, int) {
	h := &HalfMatrix{}
	overflow := HalfFromMatrixInto(m, scale, h)
	return h, overflow
}

// HalfFromMatrixInto is HalfFromMatrix converting into h, reusing its
// backing storage when large enough. It returns the overflow count.
func HalfFromMatrixInto(m *Matrix, scale float32, h *HalfMatrix) int {
	if cap(h.Data) < m.Rows*m.Cols {
		h.Data = make(half.Vector, m.Rows*m.Cols)
	}
	h.Rows, h.Cols, h.Stride = m.Rows, m.Cols, m.Rows
	h.Data = h.Data[:m.Rows*m.Cols]
	overflow := 0
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := h.Col(j)
		for i, v := range src {
			x := half.FromFloat32(v * scale)
			if x.IsInf() {
				overflow++
			}
			dst[i] = x
		}
	}
	return overflow
}

// ConcatHalfColumnsInto concatenates binary16 matrices column-wise into
// dst, reusing its backing storage when large enough.
func ConcatHalfColumnsInto(dst *HalfMatrix, ms ...*HalfMatrix) *HalfMatrix {
	if len(ms) == 0 {
		*dst = HalfMatrix{}
		return dst
	}
	rows := ms[0].Rows
	total := 0
	for _, m := range ms {
		if m.Rows != rows {
			panic(fmt.Sprintf("blas: concat row mismatch %d != %d", m.Rows, rows))
		}
		total += m.Cols
	}
	if cap(dst.Data) < rows*total {
		dst.Data = make(half.Vector, rows*total)
	}
	dst.Rows, dst.Cols, dst.Stride = rows, total, rows
	dst.Data = dst.Data[:rows*total]
	at := 0
	for _, m := range ms {
		for j := 0; j < m.Cols; j++ {
			copy(dst.Col(at), m.Col(j))
			at++
		}
	}
	return dst
}

// Col returns column j as a slice sharing the matrix's storage.
func (m *HalfMatrix) Col(j int) half.Vector {
	return m.Data[j*m.Stride : j*m.Stride+m.Rows]
}

// At returns element (i, j) widened to float32.
func (m *HalfMatrix) At(i, j int) float32 { return m.Data[j*m.Stride+i].Float32() }

// Bytes returns the binary16 storage footprint.
func (m *HalfMatrix) Bytes() int { return 2 * m.Rows * m.Cols }

// Float32 widens the matrix to float32.
func (m *HalfMatrix) Float32() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for j := 0; j < m.Cols; j++ {
		src := m.Col(j)
		dst := out.Col(j)
		for i, h := range src {
			dst[i] = h.Float32()
		}
	}
	return out
}

// Slice returns a view of columns [from, to) sharing storage with m.
func (m *HalfMatrix) Slice(from, to int) *HalfMatrix {
	if from < 0 || to > m.Cols || from > to {
		panic(fmt.Sprintf("blas: slice [%d,%d) of %d columns", from, to, m.Cols))
	}
	return &HalfMatrix{
		Rows:   m.Rows,
		Cols:   to - from,
		Stride: m.Stride,
		Data:   m.Data[from*m.Stride : from*m.Stride+(to-from-1)*m.Stride+m.Rows],
	}
}

// HGemmTN computes C = alpha·AᵀB into a float32 output matrix, where A and B
// hold binary16 operands. Products are always formed from the binary16
// operand values; the accumulator behaves per mode. With AccumFP16 the
// result of every fused step is itself rounded to binary16, so C's entries
// are exactly representable binary16 values (possibly ±Inf on overflow).
//
// alpha is applied after accumulation in float32, matching cuBLAS's
// epilogue, so alpha = -2 cannot itself overflow the FP16 accumulator.
//
//texlint:hotpath
func HGemmTN(alpha float32, A, B *HalfMatrix, mode AccumMode, C *Matrix) {
	if A.Rows != B.Rows {
		panic(fmt.Sprintf("blas: HGemmTN inner dimension mismatch %d != %d", A.Rows, B.Rows))
	}
	if C.Rows != A.Cols || C.Cols != B.Cols {
		panic(fmt.Sprintf("blas: HGemmTN output %dx%d, want %dx%d", C.Rows, C.Cols, A.Cols, B.Cols))
	}
	m, n, k := A.Cols, B.Cols, A.Rows
	if m == 0 || n == 0 {
		return
	}
	// Stage both operands into pooled float32 scratch (tight k-stride
	// columns) instead of allocating full widened matrices per call; the
	// rounding semantics live entirely in the accumulation below. Every
	// element is one sequential chain over k inside a fixed 8-column
	// block, so the output is bitwise independent of GOMAXPROCS.
	pa, aw := getF32(m * k)
	defer f32Pool.Put(pa)
	pb, bw := getF32(n * k)
	defer f32Pool.Put(pb)
	widenHalf(A, aw)
	widenHalf(B, bw)
	const jBlock = 8
	Parallel((n+jBlock-1)/jBlock, func(blk int) {
		for j := blk * jBlock; j < min((blk+1)*jBlock, n); j++ {
			bcol := bw[j*k : j*k+k]
			ccol := C.Col(j)
			for i := 0; i < m; i++ {
				var d float32
				if mode == AccumFP16 {
					d = dotFP16(aw[i*k:i*k+k], bcol)
				} else {
					d = dotProductsFP16(aw[i*k:i*k+k], bcol)
				}
				ccol[i] = alpha * d
			}
		}
	})
}

// widenHalf stages h into dst as tight k-stride float32 columns:
// dst[j*k+i] = h[i,j] widened.
func widenHalf(h *HalfMatrix, dst []float32) {
	k := h.Rows
	const wBlock = 32
	Parallel((h.Cols+wBlock-1)/wBlock, func(b int) {
		for j := b * wBlock; j < min((b+1)*wBlock, h.Cols); j++ {
			src := h.Col(j)
			out := dst[j*k : j*k+k]
			for i, x := range src {
				out[i] = x.Float32()
			}
		}
	})
}

// dotFP16 computes a dot product with full binary16 semantics: each product
// and each running sum is rounded to binary16. Operands must already be
// exactly representable in binary16 (they come from widened HalfMatrix
// storage).
func dotFP16(a, b []float32) float32 {
	var acc float32
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] // bounds-check elimination, mirroring dot4
	for i, av := range a {
		acc = roundHalf(acc + roundHalf(av*b[i]))
	}
	return acc
}

// dotProductsFP16 rounds each product to binary16 but accumulates in
// float32 (tensor-core style).
func dotProductsFP16(a, b []float32) float32 {
	var acc float32
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)] // bounds-check elimination, mirroring dot4
	for i, av := range a {
		acc += roundHalf(av * b[i])
	}
	return acc
}

// roundHalf rounds a float32 through binary16 and back. It repeats
// half.Round's fast normal-range bit trick locally so the compiler can
// inline it into the GEMM inner loop (half.Round itself is over the inline
// budget); TestRoundHalfMatchesHalfRound pins the two together.
func roundHalf(f float32) float32 {
	b := math.Float32bits(f)
	exp := (b >> 23) & 0xFF
	if exp-113 >= 142 { // subnormal, zero, Inf, or NaN: exact path
		return half.Round(f)
	}
	r := (b + 0xFFF + ((b >> 13) & 1)) &^ 0x1FFF
	if r&0x7FFFFFFF >= 0x47800000 {
		return math.Float32frombits(b&0x80000000 | 0x7F800000)
	}
	return math.Float32frombits(r)
}
