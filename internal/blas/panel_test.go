package blas

import (
	"math"
	"math/rand"
	"testing"

	"texid/internal/half"
)

// TestHGemmTNPanelMatchesHGemmTN pins the panel-served path bit-for-bit to
// the per-call staging path, for both modes, with the panel both cold and
// warm.
func TestHGemmTNPanelMatchesHGemmTN(t *testing.T) {
	const m, n, k = 13, 11, 96
	rng := rand.New(rand.NewSource(42))
	A := NewHalfMatrix(k, m)
	B := NewHalfMatrix(k, n)
	fillHalfStress(A, rng)
	fillHalfStress(B, rng)
	var p Panel
	defer p.Release()
	for _, mode := range []AccumMode{AccumFP16, AccumFP32} {
		want := NewMatrix(m, n)
		HGemmTN(-2, A, B, mode, want)
		for pass := 0; pass < 2; pass++ { // cold then warm panel
			got := NewMatrix(m, n)
			HGemmTNPanel(-2, &p, A, B, mode, got)
			if i, j, ok := sameBits(got, want); !ok {
				t.Fatalf("mode=%v pass=%d: C[%d,%d] = %x, want %x", mode, pass, i, j,
					math.Float32bits(got.Col(j)[i]), math.Float32bits(want.Col(j)[i]))
			}
		}
		if !p.Valid(A) {
			t.Fatalf("mode=%v: panel not cached after use", mode)
		}
	}
}

// TestPanelCachesAndInvalidates verifies the (pointer, generation, shape)
// key: the staging is reused while the source is untouched, and rebuilt
// after every content-changing path — HalfFromMatrixInto, concat, an
// explicit Invalidate after direct Data writes, and a different matrix.
func TestPanelCachesAndInvalidates(t *testing.T) {
	src := FromColumns(4, [][]float32{{1, 2, 3, 4}, {5, 6, 7, 8}})
	h, _ := HalfFromMatrix(src, 1)
	var p Panel
	defer p.Release()

	aw := p.For(h)
	if !p.Valid(h) {
		t.Fatal("panel invalid immediately after For")
	}
	aw2 := p.For(h)
	if &aw[0] != &aw2[0] {
		t.Fatal("warm For rebuilt the staging")
	}

	// Rebuild in place through the sanctioned converter: same pointer,
	// new generation, new contents.
	src.Col(0)[0] = 9
	HalfFromMatrixInto(src, 1, h)
	if p.Valid(h) {
		t.Fatal("panel still valid after HalfFromMatrixInto restamped the source")
	}
	if got := p.For(h)[0]; got != 9 {
		t.Fatalf("stale staging after in-place rebuild: got %g, want 9", got)
	}

	// Direct Data mutation requires an explicit Invalidate.
	h.Data[0] = half.FromFloat32(11)
	if !p.Valid(h) {
		t.Fatal("direct Data writes are invisible by design; Valid should still be true")
	}
	h.Invalidate()
	if p.Valid(h) {
		t.Fatal("panel still valid after Invalidate")
	}
	if got := p.For(h)[0]; got != 11 {
		t.Fatalf("stale staging after Invalidate: got %g, want 11", got)
	}

	// A different matrix (even with identical contents) misses on pointer.
	h2, _ := HalfFromMatrix(src, 1)
	p.For(h2)
	if p.Valid(h) || !p.Valid(h2) {
		t.Fatal("panel key did not move to the new matrix")
	}

	// Concat restamps its destination.
	ConcatHalfColumnsInto(h2, h2.Slice(0, 1), h2.Slice(1, 2))
	if p.Valid(h2) {
		t.Fatal("panel still valid after ConcatHalfColumnsInto restamped the source")
	}

	p.Release()
	if p.Valid(h2) {
		t.Fatal("panel valid after Release")
	}
}

// TestPanelSliceSharesGeneration: a Slice view shares its parent's stamp,
// so a panel keyed to the view is invalidated by the same writes that
// invalidate the parent.
func TestPanelSliceSharesGeneration(t *testing.T) {
	src := FromColumns(3, [][]float32{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	h, _ := HalfFromMatrix(src, 1)
	view := h.Slice(1, 3)
	var p Panel
	defer p.Release()
	p.For(view)
	if !p.Valid(view) {
		t.Fatal("panel invalid after For on slice view")
	}
	HalfFromMatrixInto(src, 2, h)
	view2 := h.Slice(1, 3)
	if p.Valid(view2) {
		t.Fatal("restamping the parent did not invalidate a panel keyed to a fresh view")
	}
}

// TestPanelWarmPathDoesNotWiden: the warm For is three compares — no
// widening, no pool traffic, no allocation.
func TestPanelWarmPathDoesNotWiden(t *testing.T) {
	h := NewHalfMatrix(64, 8)
	for i := range h.Data {
		h.Data[i] = half.FromFloat32(float32(i % 50))
	}
	h.Invalidate()
	var p Panel
	defer p.Release()
	p.For(h)
	if allocs := testing.AllocsPerRun(100, func() { p.For(h) }); allocs != 0 {
		t.Fatalf("warm Panel.For allocates %v times per call", allocs)
	}
}
