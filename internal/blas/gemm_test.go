package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, rows, cols int, scale float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * scale
	}
	return m
}

// naiveGemmTN is the reference implementation used to validate the kernel.
func naiveGemmTN(alpha float32, A, B *Matrix, beta float32, C *Matrix) {
	for i := 0; i < A.Cols; i++ {
		for j := 0; j < B.Cols; j++ {
			var s float64
			for l := 0; l < A.Rows; l++ {
				s += float64(A.At(l, i)) * float64(B.At(l, j))
			}
			C.Set(i, j, alpha*float32(s)+beta*C.At(i, j))
		}
	}
}

func TestGemmTNMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {4, 3, 2}, {16, 16, 8}, {33, 17, 5}, {64, 48, 128}} {
		m, n, k := dims[0], dims[1], dims[2]
		A := randomMatrix(rng, k, m, 1)
		B := randomMatrix(rng, k, n, 1)
		C := NewMatrix(m, n)
		want := NewMatrix(m, n)
		GemmTN(-2, A, B, 0, C)
		naiveGemmTN(-2, A, B, 0, want)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if diff := math.Abs(float64(C.At(i, j) - want.At(i, j))); diff > 1e-4 {
					t.Fatalf("dims %v: C(%d,%d) = %g, want %g", dims, i, j, C.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

func TestGemmTNBeta(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	A := randomMatrix(rng, 8, 5, 1)
	B := randomMatrix(rng, 8, 7, 1)
	C := randomMatrix(rng, 5, 7, 1)
	want := C.Clone()
	GemmTN(1.5, A, B, 0.5, C)
	naiveGemmTN(1.5, A, B, 0.5, want)
	for j := 0; j < 7; j++ {
		for i := 0; i < 5; i++ {
			if diff := math.Abs(float64(C.At(i, j) - want.At(i, j))); diff > 1e-4 {
				t.Fatalf("C(%d,%d) = %g, want %g", i, j, C.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestGemmTNPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner dimension mismatch")
		}
	}()
	GemmTN(1, NewMatrix(3, 2), NewMatrix(4, 2), 0, NewMatrix(2, 2))
}

func TestSquaredNorms(t *testing.T) {
	A := FromColumns(3, [][]float32{{1, 2, 2}, {0, 0, 0}, {-3, 4, 0}})
	want := []float32{9, 0, 25}
	got := SquaredNorms(A)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("norm %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestEq1Identity(t *testing.T) {
	// The GEMM decomposition of Eq. 1 must reproduce brute-force squared
	// Euclidean distances: ρ² = N_R + N_Q - 2·RᵀQ.
	rng := rand.New(rand.NewSource(3))
	d, m, n := 16, 9, 11
	R := randomMatrix(rng, d, m, 2)
	Q := randomMatrix(rng, d, n, 2)
	C := NewMatrix(m, n)
	GemmTN(-2, R, Q, 0, C)
	nr := SquaredNorms(R)
	nq := SquaredNorms(Q)
	AddRowVector(C, nr)
	for j := 0; j < n; j++ {
		AddColScalar(C, j, m, nq[j])
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var want float64
			for l := 0; l < d; l++ {
				diff := float64(R.At(l, i) - Q.At(l, j))
				want += diff * diff
			}
			if diff := math.Abs(float64(C.At(i, j)) - want); diff > 1e-3 {
				t.Fatalf("ρ²(%d,%d) = %g, want %g", i, j, C.At(i, j), want)
			}
		}
	}
}

func TestConcatColumns(t *testing.T) {
	a := FromColumns(2, [][]float32{{1, 2}, {3, 4}})
	b := FromColumns(2, [][]float32{{5, 6}})
	c := ConcatColumns(a, b)
	if c.Rows != 2 || c.Cols != 3 {
		t.Fatalf("concat shape %dx%d", c.Rows, c.Cols)
	}
	if c.At(0, 2) != 5 || c.At(1, 1) != 4 {
		t.Fatalf("concat contents wrong: %v", c.Data)
	}
	// Batched GEMM over the concatenation equals per-matrix GEMMs.
	q := FromColumns(2, [][]float32{{1, 1}, {0, 2}})
	big := NewMatrix(3, 2)
	GemmTN(1, c, q, 0, big)
	small := NewMatrix(2, 2)
	GemmTN(1, a, q, 0, small)
	for j := 0; j < 2; j++ {
		for i := 0; i < 2; i++ {
			if big.At(i, j) != small.At(i, j) {
				t.Fatalf("batched GEMM mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSliceView(t *testing.T) {
	m := FromColumns(2, [][]float32{{1, 2}, {3, 4}, {5, 6}})
	v := m.Slice(1, 3)
	if v.Cols != 2 || v.At(0, 0) != 3 || v.At(1, 1) != 6 {
		t.Fatalf("slice view wrong: %+v", v)
	}
	v.Set(0, 0, 99)
	if m.At(0, 1) != 99 {
		t.Fatal("slice does not share storage")
	}
}

func TestPropertyGemmLinearity(t *testing.T) {
	// GEMM is linear in alpha: Gemm(2a) == 2*Gemm(a).
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d, m, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		A := randomMatrix(rng, d, m, 1)
		B := randomMatrix(rng, d, n, 1)
		C1 := NewMatrix(m, n)
		C2 := NewMatrix(m, n)
		GemmTN(1, A, B, 0, C1)
		GemmTN(2, A, B, 0, C2)
		for i := range C1.Data {
			if math.Abs(float64(2*C1.Data[i]-C2.Data[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyNormsNonNegative(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for i, v := range vals {
			if v != v || math.IsInf(float64(v), 0) {
				vals[i] = 0
			}
			// Keep magnitudes bounded so squares stay finite.
			if vals[i] > 1e18 || vals[i] < -1e18 {
				vals[i] = 1
			}
		}
		A := FromColumns(len(vals), [][]float32{vals})
		return SquaredNorms(A)[0] >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGemmTN768(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	A := randomMatrix(rng, 128, 768, 1)
	B := randomMatrix(rng, 128, 768, 1)
	C := NewMatrix(768, 768)
	b.SetBytes(int64(2 * 768 * 768 * 128 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTN(-2, A, B, 0, C)
	}
}
