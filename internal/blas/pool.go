package blas

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The package keeps one persistent pool of compute workers instead of
// spawning goroutines on every kernel invocation. Work is expressed as a
// fixed list of blocks; workers (and the calling goroutine) pull block
// indices from a shared atomic counter, so scheduling decides only *who*
// runs a block, never *what* a block contains.
//
// Deterministic-parallelism contract: callers must partition work into
// blocks whose boundaries depend only on the problem shape — never on
// GOMAXPROCS or worker count — and every float reduction must stay inside
// a single block with a fixed traversal order. Under that rule the output
// is bitwise identical for any GOMAXPROCS, which is what the texlint
// determinism invariant and the engine's reproducibility tests demand.

type poolJob struct {
	next   atomic.Int64 // next block index to claim
	done   atomic.Int64 // blocks whose fn has returned
	blocks int
	fn     func(block int)
}

// runOne claims and runs a single block, reporting whether one was left.
func (job *poolJob) runOne() bool {
	b := int(job.next.Add(1)) - 1
	if b >= job.blocks {
		return false
	}
	job.fn(b) //texlint:ignore hotalloc fn is the caller's block closure, already scanned at the Parallel call site; the field indirection only exists so workers can share it
	job.done.Add(1)
	return true
}

func (job *poolJob) drain() {
	for job.runOne() {
	}
}

var (
	poolOnce sync.Once
	poolCh   chan *poolJob
	poolSize int
)

func poolInit() {
	poolSize = runtime.NumCPU()
	poolCh = make(chan *poolJob, poolSize)
	for w := 0; w < poolSize; w++ {
		go poolWorker() //texlint:ignore goleak the worker pool is process-lifetime by design: one set of NumCPU workers parks on poolCh forever so kernel launches never pay goroutine spawn; there is deliberately no shutdown path
	}
}

func poolWorker() {
	for job := range poolCh {
		job.drain()
	}
}

// Parallel runs fn(b) for every b in [0, blocks), distributing blocks over
// the persistent worker pool. Small jobs and GOMAXPROCS=1 run inline.
// The caller participates and, while waiting for stragglers, steals whole
// jobs from the pool queue instead of blocking — so nested Parallel calls
// (a batch extraction whose per-image work is itself parallel) cannot
// deadlock even with every worker busy. See the deterministic-parallelism
// contract above: fn must not care which goroutine runs which block.
//
//texlint:hotpath
func Parallel(blocks int, fn func(block int)) {
	if blocks <= 0 {
		return
	}
	if blocks == 1 || runtime.GOMAXPROCS(0) <= 1 {
		for b := 0; b < blocks; b++ {
			fn(b)
		}
		return
	}
	poolOnce.Do(poolInit)
	job := &poolJob{blocks: blocks, fn: fn} //texlint:ignore hotalloc one fixed-size job header per parallel kernel launch, shared by every worker; amortized over the whole block sweep
	// Offer the job to at most blocks-1 workers without blocking: if the
	// pool queue is full the caller simply runs more blocks itself. A
	// worker that dequeues an already-exhausted job moves on immediately.
	offers := poolSize
	if offers > blocks-1 {
		offers = blocks - 1
	}
	for w := 0; w < offers; w++ {
		select {
		case poolCh <- job:
		default:
			offers = 0
		}
	}
	job.drain()
	// All blocks are claimed; wait for claimed blocks to finish. The
	// done counter is atomic, so observing done == blocks orders every
	// worker's writes before the caller's return.
	for job.done.Load() < int64(job.blocks) {
		select {
		case stolen := <-poolCh:
			stolen.drain()
		default:
			runtime.Gosched()
		}
	}
}
