// AVX2/FMA micro-kernels for GemmTN. See gemm_amd64.go for the dispatch
// logic and gemm.go for the bitwise-determinism contract: every C element
// is one sequential FMA chain over l = 0..k-1, so its value depends only
// on the operand columns — never on tile position, tile width, or which
// kernel variant computed it.

#include "textflag.h"

// func kern8x8(apack *float32, b *float32, bstride uintptr, c *float32, cstride uintptr, k int64, alpha float32, beta float32, mask *int32)
//
// One 8(i)×8(j) tile of C = alpha·AᵀB + beta·C.
// apack: 8·k floats, apack[l*8+r] = A[l, i0+r] (packed i-panel, zero-padded).
// b:     pointer to B[0, j0]; the 8 columns are bstride bytes apart.
// c:     pointer to C[i0, j0]; columns cstride bytes apart.
// mask:  8 lanes of 0/-1 gating the i-dimension stores (and beta loads) so
//        partial i-tiles never touch rows past C.Rows.
// Accumulator Yc holds C[i0..i0+7, j0+c].
TEXT ·kern8x8(SB), NOSPLIT, $0-64
	MOVQ apack+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ bstride+16(FP), AX
	MOVQ k+40(FP), CX

	// 8 B-column base pointers in R8..R15.
	MOVQ BX, R8
	LEAQ (R8)(AX*1), R9
	LEAQ (R9)(AX*1), R10
	LEAQ (R10)(AX*1), R11
	LEAQ (R11)(AX*1), R12
	LEAQ (R12)(AX*1), R13
	LEAQ (R13)(AX*1), R14
	LEAQ (R14)(AX*1), R15

	XORQ DX, DX
	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop8:
	VMOVUPS (SI), Y8
	VBROADCASTSS (R8)(DX*1), Y9
	VFMADD231PS Y9, Y8, Y0
	VBROADCASTSS (R9)(DX*1), Y10
	VFMADD231PS Y10, Y8, Y1
	VBROADCASTSS (R10)(DX*1), Y11
	VFMADD231PS Y11, Y8, Y2
	VBROADCASTSS (R11)(DX*1), Y12
	VFMADD231PS Y12, Y8, Y3
	VBROADCASTSS (R12)(DX*1), Y13
	VFMADD231PS Y13, Y8, Y4
	VBROADCASTSS (R13)(DX*1), Y14
	VFMADD231PS Y14, Y8, Y5
	VBROADCASTSS (R14)(DX*1), Y15
	VFMADD231PS Y15, Y8, Y6
	VBROADCASTSS (R15)(DX*1), Y9
	VFMADD231PS Y9, Y8, Y7
	ADDQ $32, SI
	ADDQ $4, DX
	DECQ CX
	JNZ loop8

	VBROADCASTSS alpha+48(FP), Y8
	MOVQ mask+56(FP), AX
	VMOVDQU (AX), Y9
	MOVQ c+24(FP), DI
	MOVQ cstride+32(FP), AX

	VXORPS X10, X10, X10
	VUCOMISS beta+52(FP), X10
	JNE beta8
	JP beta8

	// beta == 0: C = alpha·acc, masked store per column.
	VMULPS Y8, Y0, Y0
	VMASKMOVPS Y0, Y9, (DI)
	VMULPS Y8, Y1, Y1
	VMASKMOVPS Y1, Y9, (DI)(AX*1)
	LEAQ (DI)(AX*2), DI
	VMULPS Y8, Y2, Y2
	VMASKMOVPS Y2, Y9, (DI)
	VMULPS Y8, Y3, Y3
	VMASKMOVPS Y3, Y9, (DI)(AX*1)
	LEAQ (DI)(AX*2), DI
	VMULPS Y8, Y4, Y4
	VMASKMOVPS Y4, Y9, (DI)
	VMULPS Y8, Y5, Y5
	VMASKMOVPS Y5, Y9, (DI)(AX*1)
	LEAQ (DI)(AX*2), DI
	VMULPS Y8, Y6, Y6
	VMASKMOVPS Y6, Y9, (DI)
	VMULPS Y8, Y7, Y7
	VMASKMOVPS Y7, Y9, (DI)(AX*1)
	VZEROUPPER
	RET

beta8:
	// C = alpha·acc + beta·C_old (two rounded products, one rounded add,
	// matching the generic kernel's formula shape).
	VBROADCASTSS beta+52(FP), Y10
	VMASKMOVPS (DI), Y9, Y11
	VMULPS Y8, Y0, Y0
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y0, Y0
	VMASKMOVPS Y0, Y9, (DI)
	VMASKMOVPS (DI)(AX*1), Y9, Y11
	VMULPS Y8, Y1, Y1
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y1, Y1
	VMASKMOVPS Y1, Y9, (DI)(AX*1)
	LEAQ (DI)(AX*2), DI
	VMASKMOVPS (DI), Y9, Y11
	VMULPS Y8, Y2, Y2
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y2, Y2
	VMASKMOVPS Y2, Y9, (DI)
	VMASKMOVPS (DI)(AX*1), Y9, Y11
	VMULPS Y8, Y3, Y3
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y3, Y3
	VMASKMOVPS Y3, Y9, (DI)(AX*1)
	LEAQ (DI)(AX*2), DI
	VMASKMOVPS (DI), Y9, Y11
	VMULPS Y8, Y4, Y4
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y4, Y4
	VMASKMOVPS Y4, Y9, (DI)
	VMASKMOVPS (DI)(AX*1), Y9, Y11
	VMULPS Y8, Y5, Y5
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y5, Y5
	VMASKMOVPS Y5, Y9, (DI)(AX*1)
	LEAQ (DI)(AX*2), DI
	VMASKMOVPS (DI), Y9, Y11
	VMULPS Y8, Y6, Y6
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y6, Y6
	VMASKMOVPS Y6, Y9, (DI)
	VMASKMOVPS (DI)(AX*1), Y9, Y11
	VMULPS Y8, Y7, Y7
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y7, Y7
	VMASKMOVPS Y7, Y9, (DI)(AX*1)
	VZEROUPPER
	RET

// func kern8x1(apack *float32, b *float32, c *float32, k int64, alpha float32, beta float32, mask *int32)
//
// One 8(i)×1(j) tile for j-tail columns: the identical per-element FMA
// chain as kern8x8, so a column computed here is bitwise equal to the same
// column computed inside an 8-wide tile.
TEXT ·kern8x1(SB), NOSPLIT, $0-48
	MOVQ apack+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ k+24(FP), CX
	XORQ DX, DX
	VXORPS Y0, Y0, Y0

loop1:
	VMOVUPS (SI), Y8
	VBROADCASTSS (BX)(DX*1), Y9
	VFMADD231PS Y9, Y8, Y0
	ADDQ $32, SI
	ADDQ $4, DX
	DECQ CX
	JNZ loop1

	VBROADCASTSS alpha+32(FP), Y8
	MOVQ mask+40(FP), AX
	VMOVDQU (AX), Y9
	MOVQ c+16(FP), DI

	VXORPS X10, X10, X10
	VUCOMISS beta+36(FP), X10
	JNE beta1
	JP beta1

	VMULPS Y8, Y0, Y0
	VMASKMOVPS Y0, Y9, (DI)
	VZEROUPPER
	RET

beta1:
	VBROADCASTSS beta+36(FP), Y10
	VMASKMOVPS (DI), Y9, Y11
	VMULPS Y8, Y0, Y0
	VMULPS Y10, Y11, Y11
	VADDPS Y11, Y0, Y0
	VMASKMOVPS Y0, Y9, (DI)
	VZEROUPPER
	RET

// func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidx(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (lo, hi uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET
