//go:build amd64

package blas

import "os"

// kern8x8 computes one 8×8 tile of C = alpha·AᵀB + beta·C from a packed
// A i-panel and 8 contiguous B columns. See gemm_amd64.s.
//
//go:noescape
func kern8x8(apack *float32, b *float32, bstride uintptr, c *float32, cstride uintptr, k int64, alpha float32, beta float32, mask *int32)

// kern8x1 computes one 8×1 tile with the identical per-element FMA chain,
// used for j-tail columns.
//
//go:noescape
func kern8x1(apack *float32, b *float32, c *float32, k int64, alpha float32, beta float32, mask *int32)

func cpuidx(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (lo, hi uint32)

// haveAVX2FMA reports whether the CPU and OS support the AVX2+FMA kernel
// path: AVX2 and FMA instruction sets, plus OS-enabled YMM state (OSXSAVE
// and XCR0 bits 1-2). TEXID_NOASM=1 forces the portable kernels, which the
// cross-implementation tests use to exercise both paths.
func haveAVX2FMA() bool {
	if os.Getenv("TEXID_NOASM") != "" {
		return false
	}
	maxID, _, _, _ := cpuidx(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	_, _, c1, _ := cpuidx(1, 0)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuidx(7, 0)
	return b7&(1<<5) != 0 // AVX2
}

var useAVX2 = haveAVX2FMA()
