package texture

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// EncodePNG writes the image as an 8-bit grayscale PNG. Pixel values are
// clamped to [0, 1] before quantization.
func EncodePNG(w io.Writer, im *Image) error {
	g := image.NewGray(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			v := im.At(x, y)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			g.SetGray(x, y, color.Gray{Y: uint8(v*255 + 0.5)})
		}
	}
	return png.Encode(w, g)
}

// DecodePNG reads a PNG (any color model; colors are converted to
// luminance) into a float32 image in [0, 1].
func DecodePNG(r io.Reader) (*Image, error) {
	src, err := png.Decode(r)
	if err != nil {
		return nil, fmt.Errorf("texture: decoding PNG: %w", err)
	}
	b := src.Bounds()
	if b.Dx() <= 0 || b.Dy() <= 0 {
		return nil, fmt.Errorf("texture: empty PNG image")
	}
	im := NewImage(b.Dx(), b.Dy())
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			// color.GrayModel gives the standard luma weighting for RGB
			// inputs and is exact for grayscale inputs.
			g := color.GrayModel.Convert(src.At(x, y)).(color.Gray)
			im.Set(x-b.Min.X, y-b.Min.Y, float32(g.Y)/255)
		}
	}
	return im, nil
}
