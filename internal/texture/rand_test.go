package texture

import (
	"math/rand"
	"testing"
)

func datasetsEqual(t *testing.T, a, b *Dataset) {
	t.Helper()
	if len(a.Refs) != len(b.Refs) || len(a.Queries) != len(b.Queries) {
		t.Fatalf("shape mismatch: %d/%d refs, %d/%d queries",
			len(a.Refs), len(b.Refs), len(a.Queries), len(b.Queries))
	}
	for i := range a.Refs {
		for p := range a.Refs[i].Pix {
			if a.Refs[i].Pix[p] != b.Refs[i].Pix[p] {
				t.Fatalf("ref %d pixel %d differs", i, p)
			}
		}
	}
	for q := range a.Queries {
		if a.Truth[q] != b.Truth[q] {
			t.Fatalf("truth %d differs: %d vs %d", q, a.Truth[q], b.Truth[q])
		}
		for p := range a.Queries[q].Pix {
			if a.Queries[q].Pix[p] != b.Queries[q].Pix[p] {
				t.Fatalf("query %d pixel %d differs", q, p)
			}
		}
	}
}

func TestBuildDatasetRandReproducible(t *testing.T) {
	p := smallParams()
	a := BuildDatasetRand(rand.New(rand.NewSource(7)), 2, 3, 0.5, p)
	b := BuildDatasetRand(rand.New(rand.NewSource(7)), 2, 3, 0.5, p)
	datasetsEqual(t, a, b)
}

func TestBuildDatasetRandSeedMatters(t *testing.T) {
	p := smallParams()
	a := BuildDatasetRand(rand.New(rand.NewSource(7)), 1, 0, 0.5, p)
	b := BuildDatasetRand(rand.New(rand.NewSource(8)), 1, 0, 0.5, p)
	same := true
	for i := range a.Refs[0].Pix {
		if a.Refs[0].Pix[i] != b.Refs[0].Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different generator seeds produced identical references")
	}
}

func TestBuildDatasetSeedEntryPointStable(t *testing.T) {
	p := smallParams()
	a := BuildDataset(11, 2, 2, 0.4, p)
	b := BuildDataset(11, 2, 2, 0.4, p)
	datasetsEqual(t, a, b)
}
