// Package texture generates the synthetic tea-brick texture dataset used in
// place of the paper's proprietary Pu'er tea-brick images (300k references,
// 354 queries, collected with industry and smartphone cameras).
//
// Each reference texture is produced by a seeded procedural model:
// multi-octave value noise for the pressed-leaf base relief plus randomly
// oriented elliptical "leaf flakes" with independent albedo — enough local
// structure that a SIFT detector finds hundreds of stable keypoints, and
// enough per-seed entropy that two different seeds share essentially no
// keypoints. Query images are the same texture re-captured: an affine warp
// (viewpoint), illumination gain/bias, sensor noise, and optional occlusion,
// with a difficulty knob controlling perturbation strength. This preserves
// the property that matters for the paper's experiments: identification must
// find the one true reference under capture perturbation, and accuracy
// degrades smoothly as features are quantized (Table 2) or reduced
// (Table 7).
package texture

import (
	"fmt"
	"math"
)

// Image is a grayscale image with float32 pixels in [0, 1], row-major.
type Image struct {
	W, H int
	Pix  []float32
}

// NewImage allocates a black w×h image.
func NewImage(w, h int) *Image {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("texture: invalid image size %dx%d", w, h))
	}
	return &Image{W: w, H: h, Pix: make([]float32, w*h)}
}

// At returns the pixel at (x, y); coordinates outside the image clamp to the
// border (replicate padding), which keeps filter kernels simple.
func (im *Image) At(x, y int) float32 {
	if x < 0 {
		x = 0
	} else if x >= im.W {
		x = im.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= im.H {
		y = im.H - 1
	}
	return im.Pix[y*im.W+x]
}

// Set assigns the pixel at (x, y); out-of-bounds writes are ignored.
func (im *Image) Set(x, y int, v float32) {
	if x < 0 || x >= im.W || y < 0 || y >= im.H {
		return
	}
	im.Pix[y*im.W+x] = v
}

// Bilinear samples the image at real-valued coordinates with bilinear
// interpolation and border clamping.
func (im *Image) Bilinear(x, y float64) float32 {
	x0 := int(math.Floor(x))
	y0 := int(math.Floor(y))
	fx := float32(x - float64(x0))
	fy := float32(y - float64(y0))
	v00 := im.At(x0, y0)
	v10 := im.At(x0+1, y0)
	v01 := im.At(x0, y0+1)
	v11 := im.At(x0+1, y0+1)
	top := v00 + (v10-v00)*fx
	bot := v01 + (v11-v01)*fx
	return top + (bot-top)*fy
}

// Clone returns a deep copy of the image.
func (im *Image) Clone() *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	return out
}

// Clamp01 clamps every pixel into [0, 1] in place and returns the image.
func (im *Image) Clamp01() *Image {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
	return im
}

// Normalize linearly rescales pixels so the min maps to 0 and the max to 1.
// Degenerate (constant) images become all zeros.
func (im *Image) Normalize() *Image {
	lo, hi := im.Pix[0], im.Pix[0]
	for _, v := range im.Pix {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi-lo < 1e-12 {
		for i := range im.Pix {
			im.Pix[i] = 0
		}
		return im
	}
	inv := 1 / (hi - lo)
	for i, v := range im.Pix {
		im.Pix[i] = (v - lo) * inv
	}
	return im
}

// Blur returns a Gaussian-blurred copy of the image (separable kernel,
// truncated at 3 sigma). It models capture defocus in the perturbation
// pipeline; sigma <= 0 returns a plain copy.
func (im *Image) Blur(sigma float64) *Image {
	if sigma <= 0 {
		return im.Clone()
	}
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		radius = 1
	}
	k := make([]float32, 2*radius+1)
	var sum float64
	inv := -0.5 / (sigma * sigma)
	for i := -radius; i <= radius; i++ {
		v := math.Exp(float64(i*i) * inv)
		k[i+radius] = float32(v)
		sum += v
	}
	for i := range k {
		k[i] = float32(float64(k[i]) / sum)
	}
	tmp := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var s float32
			for i := -radius; i <= radius; i++ {
				s += k[i+radius] * im.At(x+i, y)
			}
			tmp.Pix[y*im.W+x] = s
		}
	}
	out := NewImage(im.W, im.H)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			var s float32
			for i := -radius; i <= radius; i++ {
				s += k[i+radius] * tmp.At(x, y+i)
			}
			out.Pix[y*im.W+x] = s
		}
	}
	return out
}

// Mean returns the average pixel intensity.
func (im *Image) Mean() float64 {
	var s float64
	for _, v := range im.Pix {
		s += float64(v)
	}
	return s / float64(len(im.Pix))
}
