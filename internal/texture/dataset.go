package texture

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Dataset is a ground-truthed identification benchmark: Refs[i] is the
// reference image of texture identity i, and Queries[q] is a perturbed
// re-capture of Refs[Truth[q]]. This mirrors the tea-brick dataset's
// structure (references enrolled by the manufacturer, queries captured by
// customers).
type Dataset struct {
	Refs    []*Image
	Queries []*Image
	Truth   []int
	Params  GenParams
}

// BuildDataset generates numRefs reference textures and numQueries query
// re-captures at the given difficulty, deterministically from seed.
// Reference identities are assigned to queries round-robin so every
// reference is queried as evenly as possible. Generation is parallelized
// across CPUs.
func BuildDataset(seed int64, numRefs, numQueries int, difficulty float64, p GenParams) *Dataset {
	refSeeds := make([]int64, max(numRefs, 0))
	for i := range refSeeds {
		refSeeds[i] = seed + int64(i)*1_000_003
	}
	rng := rand.New(rand.NewSource(seed ^ 0x7F4A7C15))
	return buildDataset(refSeeds, rng, numQueries, difficulty, p)
}

// BuildDatasetRand is BuildDataset with an explicit generator: every
// random choice (per-reference generation seeds and query perturbations)
// is drawn from rng, so two calls with identically seeded generators
// produce identical datasets.
func BuildDatasetRand(rng *rand.Rand, numRefs, numQueries int, difficulty float64, p GenParams) *Dataset {
	refSeeds := make([]int64, max(numRefs, 0))
	for i := range refSeeds {
		refSeeds[i] = rng.Int63()
	}
	return buildDataset(refSeeds, rng, numQueries, difficulty, p)
}

// buildDataset is the shared core. Reference seeds and the perturbation
// stream are fully drawn before the parallel sections, so worker
// scheduling cannot perturb the output.
func buildDataset(refSeeds []int64, rng *rand.Rand, numQueries int, difficulty float64, p GenParams) *Dataset {
	numRefs := len(refSeeds)
	if numRefs <= 0 {
		panic(fmt.Sprintf("texture: numRefs = %d", numRefs))
	}
	ds := &Dataset{
		Refs:    make([]*Image, numRefs),
		Queries: make([]*Image, numQueries),
		Truth:   make([]int, numQueries),
		Params:  p,
	}

	parallelFor(numRefs, func(i int) {
		ds.Refs[i] = Generate(refSeeds[i], p)
	})

	perts := make([]Perturbation, numQueries)
	for q := 0; q < numQueries; q++ {
		ds.Truth[q] = q % numRefs
		perts[q] = RandomPerturbation(rng, difficulty)
	}
	parallelFor(numQueries, func(q int) {
		ds.Queries[q] = perts[q].Apply(ds.Refs[ds.Truth[q]])
	})
	return ds
}

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS goroutines.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
