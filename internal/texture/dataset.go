package texture

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// Dataset is a ground-truthed identification benchmark: Refs[i] is the
// reference image of texture identity i, and Queries[q] is a perturbed
// re-capture of Refs[Truth[q]]. This mirrors the tea-brick dataset's
// structure (references enrolled by the manufacturer, queries captured by
// customers).
type Dataset struct {
	Refs    []*Image
	Queries []*Image
	Truth   []int
	Params  GenParams
}

// BuildDataset generates numRefs reference textures and numQueries query
// re-captures at the given difficulty, deterministically from seed.
// Reference identities are assigned to queries round-robin so every
// reference is queried as evenly as possible. Generation is parallelized
// across CPUs.
func BuildDataset(seed int64, numRefs, numQueries int, difficulty float64, p GenParams) *Dataset {
	if numRefs <= 0 {
		panic(fmt.Sprintf("texture: numRefs = %d", numRefs))
	}
	ds := &Dataset{
		Refs:    make([]*Image, numRefs),
		Queries: make([]*Image, numQueries),
		Truth:   make([]int, numQueries),
		Params:  p,
	}

	parallelFor(numRefs, func(i int) {
		ds.Refs[i] = Generate(seed+int64(i)*1_000_003, p)
	})

	// Pre-draw perturbation RNG streams deterministically so parallel
	// generation stays reproducible.
	perts := make([]Perturbation, numQueries)
	rng := rand.New(rand.NewSource(seed ^ 0x7F4A7C15))
	for q := 0; q < numQueries; q++ {
		ds.Truth[q] = q % numRefs
		perts[q] = RandomPerturbation(rng, difficulty)
	}
	parallelFor(numQueries, func(q int) {
		ds.Queries[q] = perts[q].Apply(ds.Refs[ds.Truth[q]])
	})
	return ds
}

// parallelFor runs fn(i) for i in [0, n) across GOMAXPROCS goroutines.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
