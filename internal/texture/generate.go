package texture

import (
	"math"
	"math/rand"
)

// GenParams controls the procedural texture model.
type GenParams struct {
	// Size is the square image side in pixels.
	Size int
	// Octaves is the number of value-noise octaves for the base relief.
	Octaves int
	// BaseFreq is the lattice frequency of the first octave, in cells per
	// image side.
	BaseFreq float64
	// Flakes is the number of leaf-flake ellipses stamped onto the base.
	Flakes int
	// FlakeMin and FlakeMax bound the flake semi-major axis in pixels.
	FlakeMin, FlakeMax float64
	// Contrast scales the flake albedo deviation from the base.
	Contrast float64
	// Grain is the amplitude of per-pixel fibre grain, the fine detail a
	// camera resolves on a pressed-leaf surface. Grain is part of the
	// texture identity (it is generated from the seed), not sensor noise.
	Grain float64
}

// DefaultGenParams returns the model used throughout the experiments:
// a 256×256 texture with five noise octaves and dense leaf flakes, tuned so
// the SIFT detector finds several hundred keypoints per image.
func DefaultGenParams() GenParams {
	return GenParams{
		Size:     256,
		Octaves:  6,
		BaseFreq: 6,
		Flakes:   2000,
		FlakeMin: 1,
		FlakeMax: 6,
		Contrast: 0.8,
		Grain:    0.06,
	}
}

// hash2 is an integer lattice hash producing a deterministic pseudo-random
// value in [0,1) for lattice point (x, y) under a given seed.
func hash2(x, y int64, seed int64) float64 {
	h := uint64(x)*0x9E3779B97F4A7C15 ^ uint64(y)*0xC2B2AE3D27D4EB4F ^ uint64(seed)*0x165667B19E3779F9
	h ^= h >> 31
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 27
	h *= 0xD6E8FEB86659FD93
	h ^= h >> 33
	return float64(h>>11) / float64(1<<53)
}

// smoothstep is the C¹ fade used for value-noise interpolation.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise evaluates seeded 2-D value noise at (x, y) in lattice units.
func valueNoise(x, y float64, seed int64) float64 {
	x0 := math.Floor(x)
	y0 := math.Floor(y)
	tx := smoothstep(x - x0)
	ty := smoothstep(y - y0)
	ix, iy := int64(x0), int64(y0)
	v00 := hash2(ix, iy, seed)
	v10 := hash2(ix+1, iy, seed)
	v01 := hash2(ix, iy+1, seed)
	v11 := hash2(ix+1, iy+1, seed)
	top := v00 + (v10-v00)*tx
	bot := v01 + (v11-v01)*tx
	return top + (bot-top)*ty
}

// Generate renders the texture for the given seed. Identical (seed, params)
// pairs always produce identical images, which is how the dataset assigns
// each reference texture a stable identity.
func Generate(seed int64, p GenParams) *Image {
	im := NewImage(p.Size, p.Size)
	size := float64(p.Size)

	// Multi-octave value noise: the pressed-leaf base relief.
	for y := 0; y < p.Size; y++ {
		for x := 0; x < p.Size; x++ {
			var v, amp, norm float64
			freq := p.BaseFreq
			amp = 1
			for o := 0; o < p.Octaves; o++ {
				v += amp * valueNoise(float64(x)/size*freq, float64(y)/size*freq, seed+int64(o)*7919)
				norm += amp
				amp *= 0.65
				freq *= 2.1
			}
			im.Pix[y*p.Size+x] = float32(v / norm)
		}
	}

	// Leaf flakes: oriented ellipses with independent albedo, soft edges.
	rng := rand.New(rand.NewSource(seed ^ 0x5DEECE66D))
	for f := 0; f < p.Flakes; f++ {
		cx := rng.Float64() * size
		cy := rng.Float64() * size
		a := p.FlakeMin + rng.Float64()*(p.FlakeMax-p.FlakeMin) // semi-major
		b := a * (0.25 + rng.Float64()*0.5)                     // semi-minor
		theta := rng.Float64() * math.Pi
		albedo := float32((rng.Float64()*2 - 1) * p.Contrast)
		cosT, sinT := math.Cos(theta), math.Sin(theta)

		x0, x1 := int(cx-a-1), int(cx+a+1)
		y0, y1 := int(cy-a-1), int(cy+a+1)
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				dx := float64(x) - cx
				dy := float64(y) - cy
				u := (dx*cosT + dy*sinT) / a
				v := (-dx*sinT + dy*cosT) / b
				r2 := u*u + v*v
				if r2 >= 1 {
					continue
				}
				// Soft falloff toward the flake edge keeps gradients
				// well-behaved for the DoG detector.
				w := float32(1 - r2)
				if x >= 0 && x < p.Size && y >= 0 && y < p.Size {
					im.Pix[y*p.Size+x] += albedo * w
				}
			}
		}
	}

	// Fibre grain: seeded per-pixel detail that survives re-capture (it is
	// resampled by the query warp like any other surface detail).
	if p.Grain > 0 {
		for y := 0; y < p.Size; y++ {
			for x := 0; x < p.Size; x++ {
				g := hash2(int64(x), int64(y), seed^0x3C6EF372)
				im.Pix[y*p.Size+x] += float32((g*2 - 1) * p.Grain)
			}
		}
	}

	// Standardize and squash with a logistic curve instead of min-max
	// normalization: with thousands of overlapping flakes the extreme
	// pixels are rare outliers, and min-max scaling would crush the local
	// contrast the keypoint detector depends on.
	var mean, m2 float64
	for _, v := range im.Pix {
		mean += float64(v)
	}
	mean /= float64(len(im.Pix))
	for _, v := range im.Pix {
		d := float64(v) - mean
		m2 += d * d
	}
	std := math.Sqrt(m2 / float64(len(im.Pix)))
	if std < 1e-9 {
		std = 1
	}
	for i, v := range im.Pix {
		z := (float64(v) - mean) / (1.5 * std)
		im.Pix[i] = float32(1 / (1 + math.Exp(-2*z)))
	}
	return im
}
