package texture

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallParams() GenParams {
	p := DefaultGenParams()
	p.Size = 64
	p.Flakes = 40
	return p
}

func TestGenerateDeterministic(t *testing.T) {
	p := smallParams()
	a := Generate(42, p)
	b := Generate(42, p)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs between identical seeds", i)
		}
	}
}

func TestGenerateDistinctSeeds(t *testing.T) {
	p := smallParams()
	a := Generate(1, p)
	b := Generate(2, p)
	var diff float64
	for i := range a.Pix {
		diff += math.Abs(float64(a.Pix[i] - b.Pix[i]))
	}
	diff /= float64(len(a.Pix))
	if diff < 0.05 {
		t.Fatalf("different seeds produce near-identical textures (mean abs diff %g)", diff)
	}
}

func TestGenerateRange(t *testing.T) {
	im := Generate(7, smallParams())
	lo, hi := float32(1), float32(0)
	for _, v := range im.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pixel out of range: %g", v)
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// The logistic contrast curve should use most of the dynamic range.
	if lo > 0.2 || hi < 0.8 {
		t.Fatalf("texture has poor dynamic range: [%g,%g]", lo, hi)
	}
}

func TestGenerateHasTexture(t *testing.T) {
	// The texture must have substantial local gradient energy for SIFT to
	// find keypoints: check mean absolute horizontal gradient.
	im := Generate(11, smallParams())
	var g float64
	n := 0
	for y := 0; y < im.H; y++ {
		for x := 1; x < im.W; x++ {
			g += math.Abs(float64(im.At(x, y) - im.At(x-1, y)))
			n++
		}
	}
	if g/float64(n) < 0.01 {
		t.Fatalf("texture too flat: mean |∇x| = %g", g/float64(n))
	}
}

func TestAtClampsBorders(t *testing.T) {
	im := NewImage(4, 4)
	im.Set(0, 0, 0.5)
	im.Set(3, 3, 0.75)
	if im.At(-2, -2) != 0.5 {
		t.Errorf("negative clamp failed")
	}
	if im.At(10, 10) != 0.75 {
		t.Errorf("positive clamp failed")
	}
}

func TestBilinear(t *testing.T) {
	im := NewImage(2, 2)
	im.Set(0, 0, 0)
	im.Set(1, 0, 1)
	im.Set(0, 1, 0)
	im.Set(1, 1, 1)
	if got := im.Bilinear(0.5, 0.5); math.Abs(float64(got)-0.5) > 1e-6 {
		t.Errorf("Bilinear(0.5,0.5) = %g, want 0.5", got)
	}
	if got := im.Bilinear(0, 0); got != 0 {
		t.Errorf("Bilinear(0,0) = %g, want 0", got)
	}
}

func TestIdentityPerturbationIsNoOp(t *testing.T) {
	im := Generate(3, smallParams())
	p := Identity()
	p.NoiseSigma = 0
	out := p.Apply(im)
	for i := range im.Pix {
		if math.Abs(float64(im.Pix[i]-out.Pix[i])) > 1e-5 {
			t.Fatalf("identity perturbation changed pixel %d: %g -> %g", i, im.Pix[i], out.Pix[i])
		}
	}
}

func TestPerturbationChangesImage(t *testing.T) {
	im := Generate(3, smallParams())
	rng := rand.New(rand.NewSource(9))
	p := RandomPerturbation(rng, 0.8)
	out := p.Apply(im)
	var diff float64
	for i := range im.Pix {
		diff += math.Abs(float64(im.Pix[i] - out.Pix[i]))
	}
	if diff/float64(len(im.Pix)) < 0.01 {
		t.Fatal("strong perturbation left image nearly unchanged")
	}
	// Output must stay in [0,1] (Clamp01).
	for _, v := range out.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("perturbed pixel out of range: %g", v)
		}
	}
}

func TestPerturbationDeterministic(t *testing.T) {
	im := Generate(5, smallParams())
	p := Perturbation{Rotate: 0.1, Scale: 1.05, Gain: 1.1, NoiseSigma: 0.02, NoiseSeed: 77}
	a := p.Apply(im)
	b := p.Apply(im)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("perturbation with fixed NoiseSeed is not deterministic")
		}
	}
}

func TestRandomPerturbationDifficultyScales(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var easyMag, hardMag float64
	for i := 0; i < 200; i++ {
		e := RandomPerturbation(rng, 0.1)
		h := RandomPerturbation(rng, 1.0)
		easyMag += math.Abs(e.Rotate) + math.Abs(e.Scale-1)
		hardMag += math.Abs(h.Rotate) + math.Abs(h.Scale-1)
	}
	if hardMag <= easyMag {
		t.Fatalf("difficulty does not scale perturbation: easy %g, hard %g", easyMag, hardMag)
	}
}

func TestBuildDataset(t *testing.T) {
	ds := BuildDataset(123, 4, 10, 0.3, smallParams())
	if len(ds.Refs) != 4 || len(ds.Queries) != 10 || len(ds.Truth) != 10 {
		t.Fatalf("dataset shape wrong: %d refs, %d queries", len(ds.Refs), len(ds.Queries))
	}
	for q, id := range ds.Truth {
		if id != q%4 {
			t.Errorf("truth[%d] = %d, want %d", q, id, q%4)
		}
	}
	// Determinism across builds.
	ds2 := BuildDataset(123, 4, 10, 0.3, smallParams())
	for i := range ds.Queries[3].Pix {
		if ds.Queries[3].Pix[i] != ds2.Queries[3].Pix[i] {
			t.Fatal("dataset build is not deterministic")
		}
	}
}

func TestPropertyPerturbOutputInRange(t *testing.T) {
	im := Generate(21, smallParams())
	f := func(seed int64, diff float64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomPerturbation(rng, math.Mod(math.Abs(diff), 1))
		out := p.Apply(im)
		for _, v := range out.Pix {
			if v < 0 || v > 1 || v != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate256(b *testing.B) {
	p := DefaultGenParams()
	for i := 0; i < b.N; i++ {
		Generate(int64(i), p)
	}
}

func TestPNGRoundTrip(t *testing.T) {
	im := Generate(31, smallParams())
	var buf bytes.Buffer
	if err := EncodePNG(&buf, im); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePNG(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != im.W || back.H != im.H {
		t.Fatalf("size changed: %dx%d", back.W, back.H)
	}
	// 8-bit quantization: error bounded by half a level.
	for i := range im.Pix {
		if math.Abs(float64(im.Pix[i]-back.Pix[i])) > 1.0/255 {
			t.Fatalf("pixel %d: %g -> %g", i, im.Pix[i], back.Pix[i])
		}
	}
}

func TestDecodePNGRejectsGarbage(t *testing.T) {
	if _, err := DecodePNG(bytes.NewReader([]byte("not a png"))); err == nil {
		t.Fatal("garbage decoded")
	}
}
