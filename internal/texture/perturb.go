package texture

import (
	"math"
	"math/rand"
)

// Perturbation models one re-capture of a texture: a similarity warp
// (viewpoint change), photometric gain/bias (illumination), additive sensor
// noise, and an optional rectangular occlusion. Applying a Perturbation to a
// reference image yields a query image whose ground-truth identity is the
// reference.
type Perturbation struct {
	Rotate     float64 // radians, about the image center
	Scale      float64 // isotropic scale factor
	ShearX     float64 // horizontal shear coefficient (viewpoint skew)
	TranslateX float64 // pixels
	TranslateY float64 // pixels
	Gain       float64 // multiplicative illumination change
	Bias       float64 // additive illumination change
	BlurSigma  float64 // capture defocus/motion blur (Gaussian sigma, px)
	NoiseSigma float64 // std-dev of additive Gaussian sensor noise
	OcclusionW float64 // occluded square side, as a fraction of image side
	NoiseSeed  int64   // seed for the sensor-noise field
}

// Identity returns the no-op perturbation.
func Identity() Perturbation { return Perturbation{Scale: 1, Gain: 1} }

// RandomPerturbation draws a perturbation whose strength grows with
// difficulty in [0, 1]. difficulty 0 is a near-identical re-capture;
// difficulty 1 combines a large viewpoint change with strong illumination
// shift, noise, and occlusion — hard enough that identification with
// reduced feature counts starts to fail, which is what Tables 2 and 7
// measure.
func RandomPerturbation(rng *rand.Rand, difficulty float64) Perturbation {
	if difficulty < 0 {
		difficulty = 0
	}
	if difficulty > 1 {
		difficulty = 1
	}
	d := difficulty
	sym := func(scale float64) float64 { return (rng.Float64()*2 - 1) * scale }
	return Perturbation{
		Rotate:     sym(0.45 * d),           // up to ~26°
		Scale:      1 + sym(0.22*d),         // ±22% zoom
		ShearX:     sym(0.15 * d),           // viewpoint skew
		TranslateX: sym(10 * d),             // pixels
		TranslateY: sym(10 * d),             // pixels
		Gain:       1 + sym(0.35*d),         // ±35% illumination gain
		Bias:       sym(0.12 * d),           // illumination bias
		BlurSigma:  d * rng.Float64() * 2.8, // smartphone defocus/motion blur
		NoiseSigma: 0.01 + 0.07*d,           // sensor noise
		OcclusionW: 0.28 * d * rng.Float64(),
		NoiseSeed:  rng.Int63(),
	}
}

// Apply renders the perturbed re-capture of im. The geometric warp is
// applied by inverse mapping with bilinear sampling about the image center,
// so the output has the same dimensions as the input.
func (p Perturbation) Apply(im *Image) *Image {
	out := NewImage(im.W, im.H)
	cx := float64(im.W-1) / 2
	cy := float64(im.H-1) / 2

	scale := p.Scale
	if scale == 0 {
		scale = 1
	}
	// Forward transform: rotate·scale·shear then translate. We invert it to
	// map destination pixels back into the source image.
	cosT, sinT := math.Cos(p.Rotate), math.Sin(p.Rotate)
	// Forward matrix M = R(θ)·S(scale)·Shear(shx):
	// [ s·cos  s·(cos·shx − sin) ]
	// [ s·sin  s·(sin·shx + cos) ]
	a := scale * cosT
	b := scale * (cosT*p.ShearX - sinT)
	c := scale * sinT
	d := scale * (sinT*p.ShearX + cosT)
	det := a*d - b*c
	if det == 0 {
		det = 1e-12
	}
	ia, ib := d/det, -b/det
	ic, id := -c/det, a/det

	gain := p.Gain
	if gain == 0 {
		gain = 1
	}

	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			dx := float64(x) - cx - p.TranslateX
			dy := float64(y) - cy - p.TranslateY
			sx := ia*dx + ib*dy + cx
			sy := ic*dx + id*dy + cy
			out.Pix[y*im.W+x] = float32(float64(im.Bilinear(sx, sy))*gain + p.Bias)
		}
	}

	// Defocus happens in the optics, before the sensor adds noise.
	if p.BlurSigma > 0 {
		out = out.Blur(p.BlurSigma)
	}
	rng := rand.New(rand.NewSource(p.NoiseSeed))
	if p.NoiseSigma > 0 {
		for i := range out.Pix {
			out.Pix[i] += float32(rng.NormFloat64() * p.NoiseSigma)
		}
	}

	if p.OcclusionW > 0 {
		side := int(p.OcclusionW * float64(im.W))
		if side > 0 {
			ox := rng.Intn(im.W - side + 1)
			oy := rng.Intn(im.H - side + 1)
			for y := oy; y < oy+side; y++ {
				for x := ox; x < ox+side; x++ {
					out.Pix[y*im.W+x] = 0.05 // dark occluder (e.g. a label)
				}
			}
		}
	}

	return out.Clamp01()
}
