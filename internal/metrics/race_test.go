package metrics

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrentMixed exercises the whole registry surface at
// once: racing registrations of the same names (must converge on one
// instance), observations, and Expose scrapes mid-flight. The final
// totals verify no update was lost.
func TestRegistryConcurrentMixed(t *testing.T) {
	r := NewRegistry()
	const workers, opsPer = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				r.Counter("hits_total", "shared counter").Inc()
				r.Gauge("occupancy", "shared gauge").Set(float64(i))
				r.Histogram("latency_ms", "shared histogram", DefBuckets).Observe(float64(i % 100))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = r.Expose()
		}
	}()
	wg.Wait()

	if got := r.Counter("hits_total", "").Value(); got != workers*opsPer {
		t.Fatalf("counter lost updates: %g, want %d", got, workers*opsPer)
	}
	count, _ := r.Histogram("latency_ms", "", DefBuckets).Snapshot()
	if count != workers*opsPer {
		t.Fatalf("histogram lost samples: %d, want %d", count, workers*opsPer)
	}
	out := r.Expose()
	for _, want := range []string{"hits_total", "occupancy", "latency_ms_bucket"} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
