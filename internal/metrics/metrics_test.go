package metrics

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "total requests")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored
	if got := c.Value(); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	// Same name returns the same counter.
	if r.Counter("requests_total", "") != c {
		t.Fatal("re-registration returned a new counter")
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("concurrent counter = %g, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("cache_bytes", "")
	g.Set(42.5)
	if g.Value() != 42.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge = %g", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_ms", "", []float64{10, 100, 1000})
	for _, v := range []float64{1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	count, sum := h.Snapshot()
	if count != 5 || sum != 5556 {
		t.Fatalf("snapshot = %d, %g", count, sum)
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %g, want 100 (bucket bound)", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %g, want +Inf (beyond last bound)", q)
	}
	empty := r.Histogram("empty_ms", "", []float64{1})
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestExposeFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "things").Add(3)
	r.Gauge("b_bytes", "size").Set(7)
	h := r.Histogram("c_ms", "lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	out := r.Expose()
	for _, want := range []string{
		"# TYPE a_total counter", "a_total 3",
		"# TYPE b_bytes gauge", "b_bytes 7",
		"# TYPE c_ms histogram",
		`c_ms_bucket{le="1"} 1`,
		`c_ms_bucket{le="10"} 2`,
		`c_ms_bucket{le="+Inf"} 2`,
		"c_ms_sum 5.5", "c_ms_count 2",
		"# HELP a_total things",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "").Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Fatalf("handler output: %s", buf[:n])
	}
}

func TestInvalidNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name accepted")
		}
	}()
	NewRegistry().Counter("bad name!", "")
}

func TestRegistryCapsDistinctNames(t *testing.T) {
	r := NewRegistry()
	// Fill the registry up to the cap (one slot is taken by the dropped
	// counter itself), simulating a bug that mints metric names from
	// request data.
	for i := 0; len(r.help) < MaxMetrics; i++ {
		r.Counter(fmt.Sprintf("texid_dynamic_%d", i), "runaway name")
	}
	if d := r.Dropped(); d != 0 {
		t.Fatalf("cap tripped while filling: %v", d)
	}
	linesAtCap := strings.Count(r.Expose(), "\n")

	// Overflow: registrations still return live metrics, but the
	// exposition stops growing and the overflow is counted.
	over := r.Counter("texid_overflow_counter", "refused")
	over.Add(5)
	if got := over.Value(); got != 5 {
		t.Fatalf("overflow counter not usable: %v", got)
	}
	r.Gauge("texid_overflow_gauge", "refused").Set(1)
	r.Histogram("texid_overflow_hist", "refused", DefBuckets).Observe(2)
	if d := r.Dropped(); d != 3 {
		t.Fatalf("dropped = %v, want 3", d)
	}
	body := r.Expose()
	if got := strings.Count(body, "\n"); got != linesAtCap {
		t.Fatalf("exposition grew past the cap: %d lines, was %d", got, linesAtCap)
	}
	if !strings.Contains(body, DroppedMetricName+" 3") {
		t.Fatalf("dropped counter not exposed:\n%s", body[:200])
	}

	// Interning: re-registering an existing name is never refused and
	// returns the canonical object, even at cap.
	again := r.Counter("texid_dynamic_0", "")
	again.Inc()
	if r.Dropped() != 3 {
		t.Fatal("re-registration of an interned name counted as dropped")
	}
	if r.Counter("texid_dynamic_0", "") != again {
		t.Fatal("interning broke: distinct objects for one name")
	}
}
