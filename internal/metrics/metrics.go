// Package metrics is a minimal, dependency-free metrics registry with a
// Prometheus-text exposition endpoint, used by the distributed search
// service: counters for API traffic, gauges for cache occupancy, and
// histograms for search latency. It implements just enough of the
// Prometheus text format (counters, gauges, cumulative histograms) for
// standard scrapers to consume.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// MaxMetrics caps the distinct metric names one registry will hold.
// Registration interns by name (one canonical object per name, returned
// to every caller), so a fixed instrumentation vocabulary costs a fixed
// number of slots — but a bug that derives metric names from request
// data (a dynamic op label, an id baked into the name) would otherwise
// grow the exposition without bound over a long soak, turning /metrics
// into an allocation leak and the scrape into an ever-larger payload.
// Past the cap, registration returns a live but unexported metric and
// the overflow is counted in texid_metrics_dropped_total.
const MaxMetrics = 512

// DroppedMetricName is the counter tracking registrations refused by the
// MaxMetrics cap. It is registered in every registry, so a non-zero
// sample on a scrape is the audit signal that something is minting
// dynamic metric names.
const DroppedMetricName = "texid_metrics_dropped_total"

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu sync.Mutex
	//texlint:guards mu
	counters map[string]*Counter
	//texlint:guards mu
	gauges map[string]*Gauge
	//texlint:guards mu
	histograms map[string]*Histogram
	//texlint:guards mu
	help map[string]string

	// dropped counts registrations refused by the MaxMetrics cap (also
	// exposed as DroppedMetricName; the field keeps the hot path free of
	// a map lookup).
	dropped *Counter
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		help:       make(map[string]string),
	}
	r.dropped = &Counter{}
	r.counters[DroppedMetricName] = r.dropped
	r.help[DroppedMetricName] = "metric registrations refused by the MaxMetrics name cap"
	return r
}

// atCapLocked reports whether registering name would exceed MaxMetrics.
// Existing names always pass: interning returns the canonical object.
func (r *Registry) atCapLocked(name string) bool {
	if _, ok := r.help[name]; ok {
		return false
	}
	return len(r.help) >= MaxMetrics
}

// Dropped returns how many registrations the cap has refused.
func (r *Registry) Dropped() float64 { return r.dropped.Value() }

// Counter is a monotonically increasing counter. Float values are stored
// as micro-units in a uint64 so Add is lock-free.
type Counter struct {
	micro atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	c.micro.Add(uint64(v * 1e6))
}

// Value returns the current count.
func (c *Counter) Value() float64 { return float64(c.micro.Load()) / 1e6 }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative histogram with fixed upper bounds.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64
	buckets []uint64
	count   uint64
	sum     float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	for i, b := range h.bounds {
		if v <= b {
			h.buckets[i]++
		}
	}
}

// Snapshot returns (count, sum) for tests and stats.
func (h *Histogram) Snapshot() (uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum
}

// Quantile returns an upper-bound estimate of the q-quantile (the bucket
// boundary at which the cumulative count reaches q).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	for i, b := range h.bounds {
		if h.buckets[i] >= target {
			return b
		}
	}
	return math.Inf(1)
}

// validName guards against names that would corrupt the exposition format.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers (or returns the existing) counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.atCapLocked(name) {
		r.dropped.Inc()
		return &Counter{} // live but never exposed
	}
	c := &Counter{}
	r.counters[name] = c
	r.help[name] = help
	return c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.atCapLocked(name) {
		r.dropped.Inc()
		return &Gauge{} // live but never exposed
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.help[name] = help
	return g
}

// Histogram registers (or returns the existing) histogram with the given
// upper bounds (sorted ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if r.atCapLocked(name) {
		r.dropped.Inc()
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		return &Histogram{bounds: bs, buckets: make([]uint64, len(bs))} // live but never exposed
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	h := &Histogram{bounds: bs, buckets: make([]uint64, len(bs))}
	r.histograms[name] = h
	r.help[name] = help
	return h
}

// Expose renders every metric in the Prometheus text exposition format.
func (r *Registry) Expose() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if help := r.help[n]; help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", n, help)
		}
		switch {
		case r.counters[n] != nil:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %g\n", n, n, r.counters[n].Value())
		case r.gauges[n] != nil:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", n, n, r.gauges[n].Value())
		case r.histograms[n] != nil:
			h := r.histograms[n]
			fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
			h.mu.Lock()
			for i, bound := range h.bounds {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, fmt.Sprintf("%g", bound), h.buckets[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, h.count)
			fmt.Fprintf(&b, "%s_sum %g\n", n, h.sum)
			fmt.Fprintf(&b, "%s_count %d\n", n, h.count)
			h.mu.Unlock()
		}
	}
	return b.String()
}

// Handler serves the exposition format over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		// A failed scrape write is the scraper's problem, not ours.
		_, _ = fmt.Fprint(w, r.Expose())
	})
}

// DefBuckets are latency bounds in milliseconds suitable for search
// requests.
var DefBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}
