package texid

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzSnapshotLoad hammers the snapshot reader with arbitrary streams. The
// seed corpus under testdata/fuzz/FuzzSnapshotLoad pins the hostile-length
// shapes wiretaint guards against: a record-length prefix far over
// maxSnapshotRecord, one just under the cap with no payload behind it, and
// a truncated chunk boundary. Load must reject all of them with an error —
// never a panic, and never by committing the claimed allocation up front
// (limits.ReadChunked only allocates as payload actually arrives, which is
// what lets this fuzz target survive a 4 GB length claim).
func FuzzSnapshotLoad(f *testing.F) {
	// A well-formed snapshot seeds the valid path: header, one real record,
	// terminator.
	sys, err := Open(smallConfig())
	if err != nil {
		f.Fatal(err)
	}
	if err := sys.EnrollImage(1, smallTexture(7)); err != nil {
		f.Fatal(err)
	}
	var good bytes.Buffer
	if err := sys.Save(&good); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())

	hdr := make([]byte, 5)
	binary.LittleEndian.PutUint32(hdr, snapshotMagic)
	hdr[4] = snapshotVersion
	// Claimed record length over the 1 GB cap, no payload.
	huge := append(append([]byte(nil), hdr...), 0xF0, 0xFF, 0xFF, 0xFF)
	f.Add(huge)
	// Claimed length just under the cap, payload absent: the chunked read
	// must fail on the first chunk instead of pre-allocating the claim.
	under := append(append([]byte(nil), hdr...), 0xFF, 0xFF, 0xFF, 0x3F)
	f.Add(under)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		sys, err := Open(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		n, err := sys.Load(bytes.NewReader(data))
		if err == nil && n > 0 {
			// Accepted records must round-trip through Save.
			var buf bytes.Buffer
			if err := sys.Save(&buf); err != nil {
				t.Fatalf("accepted snapshot fails to re-save: %v", err)
			}
		}
	})
}
