// Package texid is a large-scale texture identification system on
// simulated distributed GPUs — a full reproduction of "Exploring HW/SW
// Co-Optimizations for Accelerating Large-scale Texture Identification on
// Distributed GPUs" (Wang, Zhang, Li, Lin — ICPP 2021).
//
// A texture identification system answers two questions about product
// surfaces (the paper's application is tea-brick traceability):
//
//   - one-to-one verification: do these two images show the same texture?
//   - one-to-many search: which of up to millions of enrolled reference
//     textures does this query image show, if any?
//
// The pipeline is SIFT local features + 2-nearest-neighbors matching with
// a ratio test (Fig. 2 of the paper), accelerated by the paper's four
// HW/SW co-optimizations: a GEMM formulation of 2-NN with a single-pass
// top-2 scan, FP16 feature storage, reference-matrix batching (with
// RootSIFT, which eliminates the norm terms), and a hybrid GPU/host FIFO
// feature cache streamed through multiple CUDA streams. Since no CUDA
// hardware exists here, devices are provided by a functional-plus-timing
// GPU simulator: results are computed for real, while performance numbers
// come from a calibrated device model (see DESIGN.md).
//
// Quick start:
//
//	sys, err := texid.Open(texid.DefaultConfig())
//	img := texid.GenerateTexture(42)             // or load your own
//	err = sys.EnrollImage(1001, img)
//	res, err := sys.SearchImage(capturedImage)
//	if res.Accepted { fmt.Println("matched", res.ID) }
package texid

import (
	"fmt"
	"sort"

	"texid/internal/blas"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/serve"
	"texid/internal/sift"
	"texid/internal/texture"
)

// Re-exported building blocks, so downstream code can configure the system
// without reaching into internal packages.
type (
	// Image is a grayscale float32 image in [0,1].
	Image = texture.Image
	// Features is an extracted SIFT feature set.
	Features = sift.Features
	// Keypoint is one SIFT keypoint.
	Keypoint = sift.Keypoint
	// DeviceSpec describes a simulated GPU model.
	DeviceSpec = gpusim.DeviceSpec
	// EngineConfig is the single-GPU engine configuration.
	EngineConfig = engine.Config
	// ExtractorConfig is the SIFT extractor configuration.
	ExtractorConfig = sift.Config
)

// Device models.
var (
	// TeslaP100 is the paper's primary evaluation GPU.
	TeslaP100 = gpusim.TeslaP100
	// TeslaV100 is the secondary GPU; pass true to enable tensor cores.
	TeslaV100 = gpusim.TeslaV100
)

// Config configures a single-node System.
type Config struct {
	// Extractor configures SIFT; RootSIFT is forced on (the production
	// pipeline depends on unit-norm features).
	Extractor sift.Config
	// Engine configures the device, batching, streams, precision, cache
	// budgets and match thresholds.
	Engine engine.Config
}

// DefaultConfig is the paper's production configuration: RootSIFT features
// (384 reference / 768 query, Sec. 7), FP16 storage, batch 256, 8 streams
// on a P100 with a 64 GB host cache.
func DefaultConfig() Config {
	ext := sift.DefaultConfig()
	ext.RootSIFT = true
	return Config{Extractor: ext, Engine: engine.DefaultConfig()}
}

// System is a single-node texture identification system: one simulated GPU
// engine plus a feature extractor.
type System struct {
	cfg      Config
	eng      *engine.Engine
	refCfg   sift.Config
	queryCfg sift.Config
}

// Open builds a System from cfg.
func Open(cfg Config) (*System, error) {
	cfg.Extractor.RootSIFT = true
	eng, err := engine.New(cfg.Engine)
	if err != nil {
		return nil, err
	}
	refCfg, queryCfg := sift.ExtractAsymmetric(cfg.Extractor,
		cfg.Engine.RefFeatures, cfg.Engine.QueryFeatures)
	return &System{cfg: cfg, eng: eng, refCfg: refCfg, queryCfg: queryCfg}, nil
}

// Engine exposes the underlying engine (stats, device profile).
func (s *System) Engine() *engine.Engine { return s.eng }

// ExtractReference runs the reference-side extractor (m strongest
// features).
func (s *System) ExtractReference(im *Image) *Features {
	return sift.Extract(im, s.refCfg)
}

// ExtractQuery runs the query-side extractor (n strongest features).
func (s *System) ExtractQuery(im *Image) *Features {
	return sift.Extract(im, s.queryCfg)
}

// EnrollImage extracts reference features from im and enrolls them under
// id.
func (s *System) EnrollImage(id int, im *Image) error {
	f := s.ExtractReference(im)
	return s.EnrollFeatures(id, f)
}

// EnrollImages enrolls a batch of reference images, extracting features in
// parallel across CPUs (extraction dominates enrollment cost; the paper
// computes reference features offline for the same reason). It stops at
// the first error, returning how many images were enrolled.
func (s *System) EnrollImages(images map[int]*Image) (int, error) {
	ids := make([]int, 0, len(images))
	for id := range images {
		ids = append(ids, id)
	}
	sort.Ints(ids) // deterministic enrollment (and batch layout)

	ims := make([]*Image, len(ids))
	for i, id := range ids {
		ims[i] = images[id]
	}
	feats := sift.ExtractBatch(ims, s.refCfg)

	for i, id := range ids {
		if err := s.EnrollFeatures(id, feats[i]); err != nil {
			return i, fmt.Errorf("texid: enrolling %d: %w", id, err)
		}
	}
	return len(ids), nil
}

// EnrollFeatures enrolls pre-extracted reference features. The feature
// count must equal the engine's RefFeatures budget; images with too few
// detected features are rejected (the paper requires ≥ the budget for
// accuracy).
func (s *System) EnrollFeatures(id int, f *Features) error {
	if f.Count() < s.cfg.Engine.RefFeatures {
		return fmt.Errorf("texid: only %d features extracted, need %d — not enough texture",
			f.Count(), s.cfg.Engine.RefFeatures)
	}
	return s.eng.Add(id, f.Descriptors, f.Keypoints)
}

// Result is the outcome of a search.
type Result struct {
	// ID is the best-matching reference (-1 when the index is empty) and
	// Accepted whether it cleared the decision threshold.
	ID       int
	Score    int
	Accepted bool
	// Compared counts reference images matched; ElapsedUS and Speed are
	// simulated-device timing.
	Compared  int
	ElapsedUS float64
	Speed     float64
	// Partial reports a degraded distributed search: only ShardsAnswered of
	// ShardsTotal shards contributed (single-engine searches always leave
	// these zero-valued with Partial=false).
	Partial        bool
	ShardsAnswered int
	ShardsTotal    int
}

// SearchImage extracts query features from im and searches the index.
func (s *System) SearchImage(im *Image) (*Result, error) {
	return s.SearchFeatures(s.ExtractQuery(im))
}

// SearchFeatures searches with pre-extracted query features.
func (s *System) SearchFeatures(f *Features) (*Result, error) {
	rep, err := s.eng.Search(f.Descriptors, f.Keypoints)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:        rep.BestID,
		Score:     rep.Score,
		Accepted:  rep.Accepted,
		Compared:  rep.Compared,
		ElapsedUS: rep.ElapsedUS,
		Speed:     rep.Speed,
	}, nil
}

// VerifyImages answers one-to-one verification: do the two images contain
// the same texture? It matches them directly (no index involved).
func (s *System) VerifyImages(a, b *Image) (bool, int, error) {
	// Enroll a into a throwaway engine-free path: extract reference
	// features from a, query features from b, and match once.
	fa := s.ExtractReference(a)
	fb := s.ExtractQuery(b)
	return verifyPair(s.cfg.Engine, fa, fb)
}

// SearchImages answers several queries in one pass through the engine's
// multi-query GEMM path: higher aggregate throughput, but every query's
// latency becomes the batch's completion time (the Sec. 5.3 trade-off).
func (s *System) SearchImages(imgs []*Image) ([]*Result, error) {
	feats := make([]*blas.Matrix, len(imgs))
	kps := make([][]sift.Keypoint, len(imgs))
	for i, f := range sift.ExtractBatch(imgs, s.queryCfg) {
		feats[i] = f.Descriptors
		kps[i] = f.Keypoints
	}
	br, err := s.eng.SearchBatch(feats, kps)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(br.Reports))
	for i, rep := range br.Reports {
		out[i] = &Result{
			ID:        rep.BestID,
			Score:     rep.Score,
			Accepted:  rep.Accepted,
			Compared:  rep.Compared,
			ElapsedUS: rep.ElapsedUS,
			Speed:     rep.Speed,
		}
	}
	return out, nil
}

// ServeOptions configures the micro-batching admission layer: MaxBatch
// bounds how many concurrent searches share one GEMM pass, Window how long
// the first query of a batch waits (wall clock) for co-travellers.
type ServeOptions = serve.Options

// ServeStats reports the admission layer's achieved batching.
type ServeStats = serve.Stats

// SearchServer fronts a System for concurrent serving: Search calls made
// from many goroutines are coalesced into single multi-query GEMM passes
// (continuous micro-batching), trading bounded admission latency for
// aggregate throughput. Per-query results are bitwise identical to calling
// System.SearchFeatures directly; only the simulated latency attribution
// differs (a coalesced query reports its batch's completion time).
type SearchServer struct {
	sys *System
	eb  *serve.EngineBatcher
}

// Serve builds the admission layer over the system's engine. Close the
// server when done; the System remains usable throughout and after.
func (s *System) Serve(opts ServeOptions) *SearchServer {
	return &SearchServer{sys: s, eb: serve.ForEngine(s.eng, opts)}
}

// SearchImage extracts query features from im and searches through the
// admission layer. Safe for concurrent use.
func (sv *SearchServer) SearchImage(im *Image) (*Result, error) {
	return sv.SearchFeatures(sv.sys.ExtractQuery(im))
}

// SearchFeatures searches with pre-extracted query features through the
// admission layer. Safe for concurrent use; under load, concurrent callers
// share batched GEMM passes.
func (sv *SearchServer) SearchFeatures(f *Features) (*Result, error) {
	rep, err := sv.eb.Search(f.Descriptors, f.Keypoints)
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:        rep.BestID,
		Score:     rep.Score,
		Accepted:  rep.Accepted,
		Compared:  rep.Compared,
		ElapsedUS: rep.ElapsedUS,
		Speed:     rep.Speed,
	}, nil
}

// Stats returns the admission counters (searches admitted, batches
// executed, achieved batch-size histogram).
func (sv *SearchServer) Stats() ServeStats { return sv.eb.Stats() }

// Close drains in-flight searches and shuts the admission layer down;
// subsequent searches fail.
func (sv *SearchServer) Close() { sv.eb.Close() }

// Compact rebuilds the reference store, reclaiming the slots left behind
// by Remove and Update; it returns the number of slots reclaimed.
func (s *System) Compact() (int, error) { return s.eng.Compact() }

// Remove deletes a reference from the index.
func (s *System) Remove(id int) bool { return s.eng.Remove(id) }

// Update replaces a reference's features.
func (s *System) Update(id int, im *Image) error {
	f := s.ExtractReference(im)
	if f.Count() < s.cfg.Engine.RefFeatures {
		return fmt.Errorf("texid: only %d features extracted, need %d",
			f.Count(), s.cfg.Engine.RefFeatures)
	}
	return s.eng.Update(id, f.Descriptors, f.Keypoints)
}

// Stats returns engine occupancy and capacity.
func (s *System) Stats() engine.Stats { return s.eng.Stats() }

// ExtractWith runs the SIFT extractor with an explicit configuration,
// for callers that manage features themselves (e.g. to serialize them
// with the wire format before talking to a remote cluster).
func ExtractWith(im *Image, cfg ExtractorConfig) *Features {
	return sift.Extract(im, cfg)
}

// GenerateTexture renders the synthetic tea-brick-like reference texture
// for a seed (the stand-in for the paper's proprietary dataset).
func GenerateTexture(seed int64) *Image {
	return texture.Generate(seed, texture.DefaultGenParams())
}

// CaptureQuery simulates re-photographing a reference texture: a random
// viewpoint/illumination/noise perturbation at the given difficulty in
// [0, 1], deterministic in seed.
func CaptureQuery(ref *Image, seed int64, difficulty float64) *Image {
	rng := newRand(seed)
	p := texture.RandomPerturbation(rng, difficulty)
	return p.Apply(ref)
}

// verifyPair matches one reference feature set against one query set on a
// throwaway single-batch engine and applies the decision rule.
func verifyPair(cfg engine.Config, ref, query *Features) (bool, int, error) {
	cfg.BatchSize = 1
	cfg.Streams = 1
	e, err := engine.New(cfg)
	if err != nil {
		return false, 0, err
	}
	if ref.Count() < cfg.RefFeatures || query.Count() == 0 {
		return false, 0, fmt.Errorf("texid: not enough features (%d ref, %d query)", ref.Count(), query.Count())
	}
	if err := e.Add(0, trimFeatures(ref, cfg.RefFeatures), ref.Keypoints); err != nil {
		return false, 0, err
	}
	rep, err := e.Search(query.Descriptors, query.Keypoints)
	if err != nil {
		return false, 0, err
	}
	return rep.Accepted && rep.BestID == 0, rep.Score, nil
}

// trimFeatures returns the first m descriptor columns (features are
// already response-ranked by the extractor).
func trimFeatures(f *Features, m int) *blas.Matrix {
	if f.Descriptors.Cols == m {
		return f.Descriptors
	}
	return f.Descriptors.Slice(0, m).Clone()
}
