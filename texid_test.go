package texid

import (
	"net/http/httptest"
	"testing"

	"texid/internal/gpusim"
	"texid/internal/wire"
)

// smallConfig shrinks the default configuration so end-to-end tests run in
// seconds on a single CPU: 128-px images, quarter-scale feature budgets,
// FP32 arithmetic (the FP16 path is covered by internal tests).
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Engine.Precision = gpusim.FP32
	cfg.Engine.BatchSize = 4
	cfg.Engine.Streams = 2
	cfg.Engine.RefFeatures = 96
	cfg.Engine.QueryFeatures = 192
	cfg.Engine.Match.ImageSize = 128
	cfg.Engine.Match.MinMatches = 12
	cfg.Extractor.MaxOctaves = 4
	return cfg
}

// smallTexture renders a 128-px reference.
func smallTexture(seed int64) *Image {
	p := defaultSmallParams()
	return generateWith(seed, p)
}

func TestEndToEndIdentification(t *testing.T) {
	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	const refs = 6
	images := make([]*Image, refs)
	for i := range images {
		images[i] = smallTexture(int64(i + 1))
		if err := sys.EnrollImage(100+i, images[i]); err != nil {
			t.Fatal(err)
		}
	}
	// A moderately perturbed re-capture of reference 3 must identify.
	q := CaptureQuery(images[3], 7, 0.3)
	res, err := sys.SearchImage(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 103 || !res.Accepted {
		t.Fatalf("search = %+v, want id 103 accepted", res)
	}
	if res.Compared != refs || res.Speed <= 0 {
		t.Fatalf("metrics wrong: %+v", res)
	}
	// An unrelated texture must be rejected.
	res, err = sys.SearchImage(smallTexture(999))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatalf("foreign texture accepted: %+v", res)
	}
}

func TestVerifyImages(t *testing.T) {
	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := smallTexture(11)
	same, score, err := sys.VerifyImages(a, CaptureQuery(a, 3, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatalf("same texture not verified (score %d)", score)
	}
	diff, score, err := sys.VerifyImages(a, smallTexture(12))
	if err != nil {
		t.Fatal(err)
	}
	if diff {
		t.Fatalf("different textures verified as same (score %d)", score)
	}
}

func TestRemoveAndUpdate(t *testing.T) {
	sys, _ := Open(smallConfig())
	im := smallTexture(21)
	if err := sys.EnrollImage(1, im); err != nil {
		t.Fatal(err)
	}
	if !sys.Remove(1) {
		t.Fatal("Remove failed")
	}
	res, _ := sys.SearchImage(CaptureQuery(im, 1, 0.2))
	if res.Accepted {
		t.Fatal("removed reference still found")
	}
	im2 := smallTexture(22)
	if err := sys.Update(1, im2); err != nil {
		t.Fatal(err)
	}
	res, _ = sys.SearchImage(CaptureQuery(im2, 2, 0.2))
	if res.ID != 1 || !res.Accepted {
		t.Fatalf("updated reference not found: %+v", res)
	}
}

func TestEnrollRejectsFlatImage(t *testing.T) {
	sys, _ := Open(smallConfig())
	flat := &Image{W: 128, H: 128, Pix: make([]float32, 128*128)}
	if err := sys.EnrollImage(1, flat); err == nil {
		t.Fatal("flat image enrolled: no texture, no features")
	}
}

func TestClusterFacade(t *testing.T) {
	cfg := DefaultClusterConfig()
	cfg.Workers = 3
	small := smallConfig()
	cfg.Engine = small.Engine
	cfg.Extractor = small.Extractor
	cs, err := OpenCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	images := make([]*Image, 6)
	for i := range images {
		images[i] = smallTexture(int64(40 + i))
		if err := cs.EnrollImage(i, images[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := cs.SearchImage(CaptureQuery(images[4], 5, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != 4 || !res.Accepted {
		t.Fatalf("cluster search = %+v", res)
	}
	st := cs.Stats()
	if st.Workers != 3 || st.References != 6 {
		t.Fatalf("cluster stats = %+v", st)
	}

	// REST round-trip through the facade's handler.
	ts := httptest.NewServer(cs.Handler())
	defer ts.Close()
	f := sys2QueryFeatures(cs, images[2])
	rec := &wire.FeatureRecord{Precision: gpusim.FP32, Scale: 1, Features: f.Descriptors, Keypoints: f.Keypoints}
	api := newAPIClient(ts.URL)
	out, err := api.Search(rec)
	if err != nil {
		t.Fatal(err)
	}
	if out.BestID != 2 || !out.Accepted {
		t.Fatalf("REST search = %+v", out)
	}
}

func TestSearchImagesBatch(t *testing.T) {
	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	images := make([]*Image, 4)
	for i := range images {
		images[i] = smallTexture(int64(70 + i))
		if err := sys.EnrollImage(i, images[i]); err != nil {
			t.Fatal(err)
		}
	}
	queries := []*Image{
		CaptureQuery(images[2], 1, 0.25),
		CaptureQuery(images[0], 2, 0.25),
		smallTexture(999), // foreign
	}
	results, err := sys.SearchImages(queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].ID != 2 || !results[0].Accepted {
		t.Fatalf("query 0: %+v", results[0])
	}
	if results[1].ID != 0 || !results[1].Accepted {
		t.Fatalf("query 1: %+v", results[1])
	}
	if results[2].Accepted {
		t.Fatalf("foreign query accepted: %+v", results[2])
	}
}

func TestSystemCompact(t *testing.T) {
	sys, _ := Open(smallConfig())
	im1 := smallTexture(81)
	im2 := smallTexture(82)
	sys.EnrollImage(1, im1)
	sys.EnrollImage(2, im2)
	sys.Remove(1)
	n, err := sys.Compact()
	if err != nil || n != 1 {
		t.Fatalf("Compact = %d, %v", n, err)
	}
	res, _ := sys.SearchImage(CaptureQuery(im2, 3, 0.25))
	if res.ID != 2 || !res.Accepted {
		t.Fatalf("reference lost in compaction: %+v", res)
	}
}

func TestEnrollImages(t *testing.T) {
	sys, _ := Open(smallConfig())
	images := map[int]*Image{}
	for id := 1; id <= 6; id++ {
		images[id] = smallTexture(int64(90 + id))
	}
	n, err := sys.EnrollImages(images)
	if err != nil || n != 6 {
		t.Fatalf("EnrollImages = %d, %v", n, err)
	}
	res, _ := sys.SearchImage(CaptureQuery(images[4], 1, 0.25))
	if res.ID != 4 || !res.Accepted {
		t.Fatalf("batch-enrolled reference not found: %+v", res)
	}
	// Duplicate enrollment fails but reports progress.
	_, err = sys.EnrollImages(map[int]*Image{4: images[4]})
	if err == nil {
		t.Fatal("duplicate batch enrollment accepted")
	}
}
