// Command texlint runs texid's project-invariant static-analysis suite.
//
//	go run ./cmd/texlint ./...
//
// It is stdlib-only and works from a clean checkout with no network
// access: packages are discovered with go/build and type-checked from
// source. Diagnostics print as file:line:col: [check] message and any
// finding makes the exit status non-zero, so scripts/check.sh can use it
// as a tier-2 gate alongside go vet and the race tests.
//
// Checks (see internal/analysis for details):
//
//	determinism  no time.Now, global math/rand, or map-ordered output in
//	             simulator code (internal/gpusim, engine, blas, knn,
//	             half, cache)
//	lockcheck    no mutex held across channel ops, time.Sleep, or
//	             blocking I/O; Lock pairs with defer Unlock on
//	             early-return paths
//	errcheck     no silently dropped error returns
//	streampair   every gpusim kernel launch/async copy is followed by a
//	             stream sync in the same function
//	fp16         no raw binary16 conversions or bit-pattern arithmetic
//	             outside internal/half
//
// Suppress a finding with `//texlint:ignore <check> <reason>` on the
// offending line or in the enclosing declaration's doc comment.
package main

import (
	"flag"
	"fmt"
	"os"

	"texid/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "list packages as they are analyzed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: texlint [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}

	analyzers := analysis.DefaultAnalyzers()
	findings := 0
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "texlint: %s\n", pkg.Path)
		}
		for _, e := range pkg.TypeErrors {
			// Type errors degrade analysis quality; surface them but keep
			// linting what still type-checked.
			fmt.Fprintf(os.Stderr, "texlint: %s: type error: %v\n", pkg.Path, e)
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			fmt.Println(d.String())
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "texlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "texlint: %v\n", err)
	os.Exit(2)
}
