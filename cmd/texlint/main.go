// Command texlint runs texid's project-invariant static-analysis suite.
//
//	go run ./cmd/texlint ./...
//	go run ./cmd/texlint -checks hotalloc,clockdomain ./internal/...
//	go run ./cmd/texlint -json ./... | jq .
//	go run ./cmd/texlint -baseline texlint.baseline ./...
//	go run ./cmd/texlint -fixtures
//
// It is stdlib-only and works from a clean checkout with no network
// access: packages are discovered with go/build and type-checked from
// source. Diagnostics print as file:line:col: [check] message (or as a
// JSON array with -json) and any finding makes the exit status non-zero,
// so scripts/check.sh can use it as a tier-2 gate alongside go vet and
// the race tests.
//
// Checks (see internal/analysis for details):
//
//	determinism  no time.Now, global math/rand, or map-ordered output in
//	             simulator code (internal/gpusim, engine, blas, knn,
//	             half, cache)
//	lockcheck    no mutex held across channel ops, time.Sleep, or
//	             blocking I/O; Lock pairs with defer Unlock on
//	             early-return paths
//	errcheck     no silently dropped error returns
//	streampair   every gpusim kernel launch/async copy is followed by a
//	             stream sync in the same function
//	fp16         no raw binary16 conversions or bit-pattern arithmetic
//	             outside internal/half
//	hotalloc     functions marked //texlint:hotpath, and everything they
//	             transitively call, must not heap-allocate (flow-aware:
//	             error paths and cap/len-guarded amortized grows allowed)
//	clockdomain  nothing reachable from internal/gpusim or from kernel
//	             payload closures may read the wall clock
//	aliasret     results of //texlint:scratchalias APIs must not be
//	             retained across reuse of the same scratch
//	atomicmix    a variable accessed via sync/atomic anywhere must be
//	             accessed atomically everywhere
//	lockorder    the module-local lock-acquisition graph (followed across
//	             function boundaries) must be acyclic; no RLock→Lock
//	             upgrades or reacquisition of a held mutex
//	guardedby    fields bound to a mutex with //texlint:guards <mutex>
//	             are only touched with that lock held (reads accept the
//	             read half; constructor and sync/atomic access exempt)
//	poollife     objects handed to sync.Pool.Put or a //texlint:freelist
//	             recycler are never used, returned, or recycled again
//	             afterwards
//	goleak       goroutines spawned from non-test code need a provable
//	             exit path: a close()d channel range, a done/context
//	             select arm, or a bounded body
//	wiretaint    lengths originating at untrusted sources (net.Conn,
//	             *http.Request, //texlint:untrusted parameters) must pass
//	             a bound check or internal/limits helper before sizing
//	             memory (flow-aware: findings carry source→sink chains)
//	maporder     call closures rooted at wire encoders, metrics
//	             exposition, and //texlint:deterministic functions must
//	             sort map iterations that build output and avoid
//	             multi-way selects
//	directive    texlint comment hygiene: bare ignores (no reason),
//	             unknown check names, malformed annotations
//
// Suppress a finding with `//texlint:ignore <check> <reason>` on the
// offending line or in the enclosing declaration's doc comment; the
// reason is mandatory. Long-lived, reviewed exceptions live in
// texlint.baseline (-baseline to apply, -write-baseline to regenerate);
// stale baseline entries for enabled checks are themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"texid/internal/analysis"
)

func main() {
	var (
		verbose       = flag.Bool("v", false, "list packages as they are analyzed")
		checksFlag    = flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
		jsonOut       = flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
		baselinePath  = flag.String("baseline", "", "filter findings against this baseline file; stale entries are errors")
		writeBaseline = flag.String("write-baseline", "", "write all findings to this baseline file and exit 0")
		fixtures      = flag.Bool("fixtures", false, "self-test: run every analyzer against its fixture package and exit")
		listChecks    = flag.Bool("list-checks", false, "print the registered check names, one per line, and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: texlint [-v] [-checks list] [-json] [-baseline file] [-write-baseline file] [-fixtures] [-list-checks] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listChecks {
		for _, a := range analysis.DefaultAnalyzers() {
			fmt.Println(a.Name)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}

	if *fixtures {
		os.Exit(runFixtures(root, *verbose))
	}

	analyzers, err := selectAnalyzers(*checksFlag)
	if err != nil {
		fatal(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatal(err)
	}
	for _, pkg := range pkgs {
		if *verbose {
			fmt.Fprintf(os.Stderr, "texlint: %s\n", pkg.Path)
		}
		for _, e := range pkg.TypeErrors {
			// Type errors degrade analysis quality; surface them but keep
			// linting what still type-checked.
			fmt.Fprintf(os.Stderr, "texlint: %s: type error: %v\n", pkg.Path, e)
		}
	}

	diags := analysis.RunAll(pkgs, analyzers)

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, diags, root); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "texlint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return
	}

	var stale []string
	if *baselinePath != "" {
		bl, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		diags = bl.Filter(diags, root)
		enabled := make(map[string]bool, len(analyzers)+1)
		for _, a := range analyzers {
			enabled[a.Name] = true
		}
		enabled["directive"] = true
		stale = bl.Stale(enabled)
	}

	if *jsonOut {
		emitJSON(diags, stale, *baselinePath)
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		for _, s := range stale {
			fmt.Printf("%s: stale baseline entry (finding no longer produced): %s\n", *baselinePath, s)
		}
	}
	if n := len(diags) + len(stale); n > 0 {
		fmt.Fprintf(os.Stderr, "texlint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// selectAnalyzers resolves the -checks flag against the default suite.
func selectAnalyzers(list string) ([]*analysis.Analyzer, error) {
	all := analysis.DefaultAnalyzers()
	if list == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	sort.Strings(names)
	var out []*analysis.Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (known: %s)", name, strings.Join(names, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-checks selected no checks")
	}
	return out, nil
}

// jsonDiag is the -json wire form of one finding. Chain is present only for
// flow-aware findings and names the call path from the root to the reported
// function ("root -> ... -> fn").
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
	Chain   string `json:"chain,omitempty"`
}

func emitJSON(diags []analysis.Diagnostic, stale []string, baselinePath string) {
	out := make([]jsonDiag, 0, len(diags)+len(stale))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Check: d.Check, Message: d.Message, Chain: d.Chain,
		})
	}
	for _, s := range stale {
		out = append(out, jsonDiag{
			File: baselinePath, Check: "baseline",
			Message: "stale baseline entry (finding no longer produced): " + s,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// runFixtures runs every analyzer against its fixture package under
// internal/analysis/testdata/src/<name> — the same harness the unit tests
// use — so a modified texlint binary can prove its checks still catch
// their true positives before being trusted as a gate.
func runFixtures(root string, verbose bool) int {
	failures := 0
	for _, a := range analysis.FixtureAnalyzers() {
		dir := filepath.Join(root, "internal", "analysis", "testdata", "src", a.Name)
		if _, err := os.Stat(dir); err != nil {
			fmt.Fprintf(os.Stderr, "texlint: fixtures: %s: missing fixture package: %v\n", a.Name, err)
			failures++
			continue
		}
		errs := analysis.CheckFixtureDir(a, dir)
		if len(errs) == 0 {
			if verbose {
				fmt.Fprintf(os.Stderr, "texlint: fixtures: %s ok\n", a.Name)
			}
			continue
		}
		failures++
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "texlint: fixtures: %s: %v\n", a.Name, err)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "texlint: fixtures: %d analyzer(s) failed self-test\n", failures)
		return 1
	}
	fmt.Fprintln(os.Stderr, "texlint: fixtures: all analyzers passed self-test")
	return 0
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "texlint: %v\n", err)
	os.Exit(2)
}
