package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"texid/internal/soak"
)

// soakOpts carries the -soak-* flag values into runSoak.
type soakOpts struct {
	qps      float64
	duration time.Duration
	mix      float64
	shards   int
	arrival  string
	addr     string
	sweep    bool
	smoke    bool
}

// soakSimConfig is the deterministic sim-clock soak every BENCH_SOAK run
// executes: a fixed fault-free schedule whose transcript digest must be
// identical across repetitions (and across GOMAXPROCS — the chaos tests
// pin that separately). Shared between the bench and the gate so the
// baseline and the current run replay the same virtual workload.
func soakSimConfig() soak.SimConfig {
	return soak.SimConfig{
		Workers:    3,
		Refs:       6,
		Ops:        400,
		QPS:        2000,
		WriteRatio: 0.2,
		Seed:       41,
	}
}

// runSoak runs the sustained-load soak suite: open-loop wall-clock
// scenarios (steady read-only, enrollment churn, optional GC sweep)
// against an in-process engine, an in-process multi-shard cluster, or a
// live texsearchd; plus the deterministic sim-clock soak and the
// zero-drift allocation probes. Optionally writes BENCH_SOAK.json and/or
// gates against a committed baseline.
func runSoak(o soakOpts, outPath, baselinePath string) {
	start := time.Now()
	fc := soak.DefaultFixture()
	mode, shards := "engine", 1
	switch {
	case o.addr != "":
		mode, shards = "http", o.shards
	case o.shards > 1:
		mode, shards = "cluster", o.shards
	}
	factory := func() (soak.Target, error) {
		switch mode {
		case "http":
			return soak.NewHTTPTarget(o.addr, fc)
		case "cluster":
			return soak.NewClusterTarget(shards, fc)
		default:
			return soak.NewEngineTarget(fc)
		}
	}

	dur := o.duration
	if o.smoke && dur > time.Second {
		dur = time.Second
	}
	scenarios := []soak.Scenario{
		{Name: "steady", QPS: o.qps, Duration: dur, Arrival: o.arrival, Seed: 41},
		{Name: "churn", QPS: o.qps, Duration: dur, Arrival: o.arrival, WriteRatio: o.mix, Seed: 43},
	}

	rep := &soak.Report{GOMAXPROCS: runtime.GOMAXPROCS(0), Mode: mode, Shards: shards}
	fmt.Printf("soak (%s mode, %d shard(s), %s arrivals, %.0f QPS offered, %s per scenario)\n",
		mode, shards, o.arrival, o.qps, dur)
	printSoakHeader()
	for _, sc := range scenarios {
		t, err := factory()
		if err != nil {
			fatalSoak(err)
		}
		res, err := soak.Run(t, sc)
		cerr := t.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			fatalSoak(err)
		}
		printSoakRow(*res)
		rep.Scenarios = append(rep.Scenarios, *res)
	}

	if o.sweep && !o.smoke {
		base := scenarios[0]
		base.Name = "steady"
		sweep, err := soak.RunSweep(factory, base, []int{50, 100, 400}, 256)
		if err != nil {
			fatalSoak(err)
		}
		fmt.Println("\nGOGC / GOMEMLIMIT sweep:")
		printSoakHeader()
		for _, res := range sweep {
			printSoakRow(res)
		}
		rep.Sweep = sweep
	}

	sim, err := soak.RunSimChecked(soakSimConfig(), 3)
	if err != nil {
		fatalSoak(err)
	}
	rep.Sim = sim
	fmt.Printf("\nsim-clock soak: %d ops, %d errors, p50 %.0f us, p99 %.0f us, p99.9 %.0f us, digest %s, deterministic=%v (%d runs)\n",
		sim.Ops, sim.Errors, sim.P50US, sim.P99US, sim.P999US, sim.Digest, sim.Deterministic, sim.Runs)

	allocs, err := soak.RunAllocProbes()
	if err != nil {
		fatalSoak(err)
	}
	rep.AllocsPerOp = allocs
	fmt.Println("\nallocation probes (zero-drift gated):")
	for _, op := range []string{"engine_search_steady", "serve_submit_demux", "cluster_searchbatch_scatter"} {
		fmt.Printf("  %-28s %8.1f allocs/op\n", op, allocs[op])
	}
	fmt.Fprintf(os.Stderr, "soak suite: GOMAXPROCS=%d, %s total\n",
		rep.GOMAXPROCS, time.Since(start).Round(time.Millisecond))

	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			fatalSoak(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	if baselinePath != "" {
		base, err := soak.LoadReport(baselinePath)
		if err != nil {
			fatalSoak(err)
		}
		// Smoke runs (CI, unknown hardware) gate only the exact half:
		// sim determinism and allocs/op drift. Full runs also gate
		// wall-clock p99 and achieved QPS against the baseline machine.
		if problems := soak.Compare(base, rep, 0.50, !o.smoke); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "REGRESSION:", p)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", baselinePath)
	}
}

func printSoakHeader() {
	fmt.Printf("%-22s %10s %10s %8s %9s %9s %9s %9s %7s %9s %9s\n",
		"scenario", "offered", "achieved", "errors", "p50 ms", "p99 ms", "p99.9 ms", "max ms",
		"GCs", "gc p99 us", "heap MB")
}

func printSoakRow(r soak.ScenarioResult) {
	fmt.Printf("%-22s %10.1f %10.1f %8d %9.2f %9.2f %9.2f %9.2f %7d %9.1f %9.1f\n",
		r.Name, r.TargetQPS, r.AchievedQPS, r.Errors,
		r.Read.P50MS, r.Read.P99MS, r.Read.P999MS, r.Read.MaxMS,
		r.GC.Cycles, r.GC.PauseP99US, r.GC.HeapPeakMB)
}

func fatalSoak(err error) {
	fmt.Fprintln(os.Stderr, "texbench: soak:", err)
	os.Exit(2)
}
