// Command texbench regenerates the paper's evaluation tables and figures
// against the simulated devices and the synthetic dataset.
//
// Usage:
//
//	texbench                          # run everything
//	texbench -experiment table1      # one experiment
//	texbench -experiment table2 -refs 24 -queries 24 -feature-scale 2
//	texbench -markdown > results.md  # EXPERIMENTS.md-style output
//
// Timing experiments always run at the paper's full dimensions (phantom
// batches); accuracy experiments (Tables 2 and 7) run the real pipeline on
// a scaled-down synthetic dataset — raise -refs/-queries/-feature-scale to
// approach paper scale at the cost of CPU time.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"

	"texid/internal/bench"
	"texid/internal/soak"
)

// maxNSFlag collects repeatable -max-ns op=ns pairs into absolute wall-clock
// ceilings. Unlike -baseline (relative, tolerant), a ceiling is a hard gate:
// the run fails if the op measures slower than the given ns/op no matter what
// the last committed numbers were.
type maxNSFlag map[string]float64

func (f maxNSFlag) String() string {
	parts := make([]string, 0, len(f))
	for op, ns := range f {
		parts = append(parts, fmt.Sprintf("%s=%.0f", op, ns))
	}
	return strings.Join(parts, ",")
}

func (f maxNSFlag) Set(v string) error {
	op, nsStr, ok := strings.Cut(v, "=")
	if !ok || op == "" {
		return fmt.Errorf("want op=ns, got %q", v)
	}
	ns, err := strconv.ParseFloat(nsStr, 64)
	if err != nil || ns <= 0 {
		return fmt.Errorf("bad ns/op ceiling %q", nsStr)
	}
	f[op] = ns
	return nil
}

func main() {
	opts := bench.DefaultOptions()
	experiment := flag.String("experiment", "all",
		"experiment id: all, "+strings.Join(bench.Experiments, ", "))
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	wallclock := flag.Bool("wallclock", false,
		"run the host wall-clock benchmark suite instead of the simulated-device experiments")
	serving := flag.Bool("serving", false,
		"run the micro-batching serving benchmark: deterministic simulated QPS (batched vs serialized) at concurrency 1/4/16/64")
	servingWall := flag.Bool("serving-wall", false,
		"with -serving: also run the machine-dependent wall-clock load generators (closed and open loop)")
	soakMode := flag.Bool("soak", false,
		"run the sustained-load soak suite: open-loop wall scenarios, GC telemetry, deterministic sim-clock soak, allocation probes")
	var so soakOpts
	flag.Float64Var(&so.qps, "soak-qps", 150, "with -soak: offered arrival rate per wall scenario")
	flag.DurationVar(&so.duration, "soak-duration", 4*time.Second, "with -soak: duration of each wall scenario")
	flag.Float64Var(&so.mix, "soak-mix", 0.2, "with -soak: write (enrollment-churn) fraction for the churn scenario")
	flag.IntVar(&so.shards, "soak-shards", 3, "with -soak: shard count (1 = in-process engine, >1 = in-process cluster)")
	flag.StringVar(&so.arrival, "soak-arrival", "poisson", "with -soak: arrival process, poisson or uniform")
	flag.StringVar(&so.addr, "soak-addr", "", "with -soak: drive a live texsearchd at this base URL instead of an in-process target")
	flag.BoolVar(&so.sweep, "soak-sweep", false, "with -soak: also sweep GOGC {50,100,400} and GOMEMLIMIT 256MiB on the steady scenario")
	flag.BoolVar(&so.smoke, "soak-smoke", false,
		"with -soak: seconds-scale CI smoke — caps scenario duration at 1s, skips the sweep, and gates only the machine-independent half of the baseline")
	count := flag.Int("count", 3, "wall-clock runs per op (best is reported)")
	opFilter := flag.String("op", "",
		"with -wallclock: only run ops whose name matches this regexp (fixtures for skipped ops are not built)")
	maxNS := maxNSFlag{}
	flag.Var(maxNS, "max-ns",
		"with -wallclock: absolute ceiling op=ns/op; repeatable; exit 1 if the op measures slower")
	outPath := flag.String("out", "", "write the benchmark report to this JSON file (BENCH_HOST.json / BENCH_SERVE.json)")
	baselinePath := flag.String("baseline", "", "compare the report against this JSON file; exit 1 on regression (>20% ns/op wall-clock, >10% QPS or identity/speedup-floor serving)")
	validateBaseline := flag.Bool("validate-baseline", false,
		"parse and validate the -baseline file without running anything; exit 2 if it is missing, malformed, or empty")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "dataset and jitter seed")
	flag.IntVar(&opts.Refs, "refs", opts.Refs, "reference images for accuracy experiments")
	flag.IntVar(&opts.Queries, "queries", opts.Queries, "query images for accuracy experiments")
	flag.IntVar(&opts.ImageSize, "image-size", opts.ImageSize, "synthetic texture side in pixels")
	flag.Float64Var(&opts.Difficulty, "difficulty", opts.Difficulty, "query perturbation strength in [0,1]")
	flag.IntVar(&opts.FeatureScale, "feature-scale", opts.FeatureScale,
		"divide paper feature budgets by this for functional experiments (1 = paper scale)")
	flag.IntVar(&opts.SystemRefs, "system-refs", opts.SystemRefs, "phantom references for the Sec. 8 experiment")
	flag.Float64Var(&opts.JitterCoV, "jitter", opts.JitterCoV, "cloud-VM jitter CoV for streaming experiments")
	flag.IntVar(&opts.MinMatches, "min-matches", opts.MinMatches, "identification acceptance threshold for accuracy experiments")
	flag.Parse()

	if *validateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "texbench: -validate-baseline requires -baseline <file>")
			os.Exit(2)
		}
		if *soakMode {
			base, err := soak.LoadReport(*baselinePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "texbench: bad baseline:", err)
				os.Exit(2)
			}
			if base.Sim == nil || len(base.Scenarios) == 0 {
				fmt.Fprintf(os.Stderr, "texbench: bad baseline: %s is missing the sim-clock soak or wall scenarios\n", *baselinePath)
				os.Exit(2)
			}
			return
		}
		if *serving {
			base, err := bench.LoadServingReport(*baselinePath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "texbench: bad baseline:", err)
				os.Exit(2)
			}
			if len(base.Sim) == 0 {
				fmt.Fprintf(os.Stderr, "texbench: bad baseline: %s contains no simulated serving levels\n", *baselinePath)
				os.Exit(2)
			}
			return
		}
		base, err := bench.LoadHostReport(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texbench: bad baseline:", err)
			os.Exit(2)
		}
		if len(base.Results) == 0 {
			fmt.Fprintf(os.Stderr, "texbench: bad baseline: %s contains no op results\n", *baselinePath)
			os.Exit(2)
		}
		return
	}

	if *soakMode {
		runSoak(so, *outPath, *baselinePath)
		return
	}

	if *serving {
		runServing(*servingWall, *outPath, *baselinePath)
		return
	}

	if *wallclock {
		var opRe *regexp.Regexp
		if *opFilter != "" {
			var err error
			if opRe, err = regexp.Compile(*opFilter); err != nil {
				fmt.Fprintln(os.Stderr, "texbench: bad -op regexp:", err)
				os.Exit(2)
			}
		}
		runWallclock(*count, opRe, maxNS, *outPath, *baselinePath)
		return
	}

	var ids []string
	if *experiment == "all" {
		ids = bench.Experiments
	} else {
		ids = strings.Split(*experiment, ",")
	}

	start := time.Now()
	var tables []*bench.Table
	if *experiment == "all" {
		tables = bench.All(opts)
	} else {
		for _, id := range ids {
			tb, err := bench.Run(strings.TrimSpace(id), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			tables = append(tables, tb)
		}
	}
	for _, tb := range tables {
		if *markdown {
			fmt.Print(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}
	fmt.Fprintf(os.Stderr, "ran %d experiment(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}

// runServing runs the serving suite, optionally writing the report and/or
// enforcing the deterministic gate (identity, 3x speedup floor at
// concurrency 16, no >10% batched-QPS drop) against a committed baseline.
func runServing(includeWall bool, outPath, baselinePath string) {
	start := time.Now()
	rep := bench.RunServing(includeWall)
	fmt.Printf("serving (simulated, deterministic): %s, %d refs (m=%d, n=%d)\n",
		rep.Device, rep.Refs, rep.RefFeatures, rep.QueryFeatures)
	fmt.Printf("%-12s %12s %12s %9s %10s %12s %12s %10s\n",
		"concurrency", "serial QPS", "batched QPS", "speedup", "mean batch", "p50 ms", "p99 ms", "identical")
	for _, lv := range rep.Sim {
		fmt.Printf("%-12d %12.1f %12.1f %8.2fx %10.1f %12.2f %12.2f %10v\n",
			lv.Concurrency, lv.SerialQPS, lv.BatchedQPS, lv.Speedup, lv.MeanBatch, lv.P50MS, lv.P99MS, lv.Identical)
	}
	if includeWall {
		fmt.Printf("\nserving (wall-clock, machine-dependent):\n")
		fmt.Printf("%-8s %-12s %10s %12s %10s %10s %10s\n",
			"mode", "concurrency", "QPS", "direct QPS", "p50 ms", "p99 ms", "mean batch")
		for _, lv := range rep.Wall {
			fmt.Printf("%-8s %-12d %10.0f %12.0f %10.2f %10.2f %10.1f\n",
				lv.Mode, lv.Concurrency, lv.QPS, lv.DirectQPS, lv.P50MS, lv.P99MS, lv.MeanBatch)
		}
	}
	fmt.Fprintf(os.Stderr, "serving suite: GOMAXPROCS=%d, %s total\n",
		rep.GOMAXPROCS, time.Since(start).Round(time.Millisecond))

	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadServingReport(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if problems := bench.CompareServingReports(base, rep, 0.10); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "REGRESSION:", p)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", baselinePath)
	}
}

// runWallclock runs the host wall-clock suite (filtered to ops matching
// opRe when non-nil), optionally writing the report, enforcing absolute
// ns/op ceilings, and/or enforcing a regression gate against a committed
// baseline.
func runWallclock(count int, opRe *regexp.Regexp, maxNS map[string]float64, outPath, baselinePath string) {
	start := time.Now()
	rep := bench.RunHostBench(count, opRe)
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "texbench: -op filter matched no benchmark ops")
		os.Exit(2)
	}
	fmt.Printf("%-28s %14s %10s %12s\n", "op", "ns/op", "MB/s", "allocs/op")
	for _, r := range rep.Results {
		fmt.Printf("%-28s %14.0f %10.1f %12.1f\n", r.Op, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "wall-clock suite: GOMAXPROCS=%d, best of %d, %s total\n",
		rep.GOMAXPROCS, count, time.Since(start).Round(time.Millisecond))

	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	if len(maxNS) > 0 {
		ran := make(map[string]bool, len(rep.Results))
		for _, r := range rep.Results {
			ran[r.Op] = true
		}
		failed := false
		for op := range maxNS {
			if !ran[op] {
				fmt.Fprintf(os.Stderr, "texbench: -max-ns op %q did not run (check -op filter)\n", op)
				failed = true
			}
		}
		for _, v := range bench.CheckCeilings(rep, maxNS) {
			fmt.Fprintln(os.Stderr, "CEILING EXCEEDED:", v)
			failed = true
		}
		if failed {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "all %d ns/op ceiling(s) met\n", len(maxNS))
	}
	if baselinePath != "" {
		base, err := bench.LoadHostReport(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regs := bench.CompareHostReports(base, rep, 0.20); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", baselinePath)
	}
}
