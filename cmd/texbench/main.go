// Command texbench regenerates the paper's evaluation tables and figures
// against the simulated devices and the synthetic dataset.
//
// Usage:
//
//	texbench                          # run everything
//	texbench -experiment table1      # one experiment
//	texbench -experiment table2 -refs 24 -queries 24 -feature-scale 2
//	texbench -markdown > results.md  # EXPERIMENTS.md-style output
//
// Timing experiments always run at the paper's full dimensions (phantom
// batches); accuracy experiments (Tables 2 and 7) run the real pipeline on
// a scaled-down synthetic dataset — raise -refs/-queries/-feature-scale to
// approach paper scale at the cost of CPU time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"texid/internal/bench"
)

func main() {
	opts := bench.DefaultOptions()
	experiment := flag.String("experiment", "all",
		"experiment id: all, "+strings.Join(bench.Experiments, ", "))
	markdown := flag.Bool("markdown", false, "emit GitHub-flavored markdown")
	wallclock := flag.Bool("wallclock", false,
		"run the host wall-clock benchmark suite instead of the simulated-device experiments")
	count := flag.Int("count", 3, "wall-clock runs per op (best is reported)")
	outPath := flag.String("out", "", "write the wall-clock report to this JSON file (BENCH_HOST.json)")
	baselinePath := flag.String("baseline", "", "compare the wall-clock report against this JSON file; exit 1 on >20% ns/op regression")
	validateBaseline := flag.Bool("validate-baseline", false,
		"parse and validate the -baseline file without running anything; exit 2 if it is missing, malformed, or empty")
	flag.Int64Var(&opts.Seed, "seed", opts.Seed, "dataset and jitter seed")
	flag.IntVar(&opts.Refs, "refs", opts.Refs, "reference images for accuracy experiments")
	flag.IntVar(&opts.Queries, "queries", opts.Queries, "query images for accuracy experiments")
	flag.IntVar(&opts.ImageSize, "image-size", opts.ImageSize, "synthetic texture side in pixels")
	flag.Float64Var(&opts.Difficulty, "difficulty", opts.Difficulty, "query perturbation strength in [0,1]")
	flag.IntVar(&opts.FeatureScale, "feature-scale", opts.FeatureScale,
		"divide paper feature budgets by this for functional experiments (1 = paper scale)")
	flag.IntVar(&opts.SystemRefs, "system-refs", opts.SystemRefs, "phantom references for the Sec. 8 experiment")
	flag.Float64Var(&opts.JitterCoV, "jitter", opts.JitterCoV, "cloud-VM jitter CoV for streaming experiments")
	flag.IntVar(&opts.MinMatches, "min-matches", opts.MinMatches, "identification acceptance threshold for accuracy experiments")
	flag.Parse()

	if *validateBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "texbench: -validate-baseline requires -baseline <file>")
			os.Exit(2)
		}
		base, err := bench.LoadHostReport(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "texbench: bad baseline:", err)
			os.Exit(2)
		}
		if len(base.Results) == 0 {
			fmt.Fprintf(os.Stderr, "texbench: bad baseline: %s contains no op results\n", *baselinePath)
			os.Exit(2)
		}
		return
	}

	if *wallclock {
		runWallclock(*count, *outPath, *baselinePath)
		return
	}

	var ids []string
	if *experiment == "all" {
		ids = bench.Experiments
	} else {
		ids = strings.Split(*experiment, ",")
	}

	start := time.Now()
	var tables []*bench.Table
	if *experiment == "all" {
		tables = bench.All(opts)
	} else {
		for _, id := range ids {
			tb, err := bench.Run(strings.TrimSpace(id), opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			tables = append(tables, tb)
		}
	}
	for _, tb := range tables {
		if *markdown {
			fmt.Print(tb.Markdown())
		} else {
			fmt.Println(tb.String())
		}
	}
	fmt.Fprintf(os.Stderr, "ran %d experiment(s) in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}

// runWallclock runs the host wall-clock suite, optionally writing the
// report and/or enforcing a regression gate against a committed baseline.
func runWallclock(count int, outPath, baselinePath string) {
	start := time.Now()
	rep := bench.RunHostBench(count)
	fmt.Printf("%-28s %14s %10s %12s\n", "op", "ns/op", "MB/s", "allocs/op")
	for _, r := range rep.Results {
		fmt.Printf("%-28s %14.0f %10.1f %12.1f\n", r.Op, r.NsPerOp, r.MBPerSec, r.AllocsPerOp)
	}
	fmt.Fprintf(os.Stderr, "wall-clock suite: GOMAXPROCS=%d, best of %d, %s total\n",
		rep.GOMAXPROCS, count, time.Since(start).Round(time.Millisecond))

	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	if baselinePath != "" {
		base, err := bench.LoadHostReport(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if regs := bench.CompareHostReports(base, rep, 0.20); len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "no regressions vs %s\n", baselinePath)
	}
}
