// Command texeval evaluates identification accuracy on a texgen-produced
// dataset directory: it enrolls every reference image, searches every
// query, and scores the results against truth.csv — the same protocol as
// the paper's tea-brick evaluation (300k references, 354 queries, top-1
// accuracy).
//
//	texgen -out dataset -refs 30 -queries 15 -difficulty 0.6
//	texeval -dataset dataset
//	texeval -dataset dataset -server http://127.0.0.1:8080   # remote cluster
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"texid"
	"texid/internal/cluster"
	"texid/internal/gpusim"
	"texid/internal/texture"
	"texid/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("texeval: ")

	dataset := flag.String("dataset", "dataset", "texgen output directory")
	server := flag.String("server", "", "evaluate against a running texsearchd instead of in-process")
	idOffset := flag.Int("id-offset", 1, "texture ids are reference index plus this offset")
	flag.Parse()

	refs := listPNGs(filepath.Join(*dataset, "refs"))
	queries := listPNGs(filepath.Join(*dataset, "queries"))
	truth := readTruth(filepath.Join(*dataset, "truth.csv"))
	if len(refs) == 0 || len(queries) == 0 {
		log.Fatalf("dataset %s is empty (refs %d, queries %d)", *dataset, len(refs), len(queries))
	}
	log.Printf("dataset: %d references, %d queries", len(refs), len(queries))

	var search func(im *texid.Image) (id int, accepted bool, score int)
	var enroll func(id int, im *texid.Image) error

	if *server == "" {
		sys, err := texid.Open(texid.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		enroll = func(id int, im *texid.Image) error { return sys.EnrollImage(id, im) }
		search = func(im *texid.Image) (int, bool, int) {
			res, err := sys.SearchImage(im)
			if err != nil {
				log.Fatal(err)
			}
			return res.ID, res.Accepted, res.Score
		}
	} else {
		api := cluster.NewClient(*server)
		if err := api.Health(); err != nil {
			log.Fatalf("server %s: %v", *server, err)
		}
		cfg := texid.DefaultConfig()
		refCfg := cfg.Extractor
		refCfg.MaxFeatures = cfg.Engine.RefFeatures
		queryCfg := cfg.Extractor
		queryCfg.MaxFeatures = cfg.Engine.QueryFeatures
		enroll = func(id int, im *texid.Image) error {
			f := texid.ExtractWith(im, refCfg)
			return api.Add(&wire.FeatureRecord{
				ID: int64(id), Precision: gpusim.FP32, Scale: 1,
				Features: f.Descriptors, Keypoints: f.Keypoints,
			})
		}
		search = func(im *texid.Image) (int, bool, int) {
			f := texid.ExtractWith(im, queryCfg)
			res, err := api.Search(&wire.FeatureRecord{
				Precision: gpusim.FP32, Scale: 1,
				Features: f.Descriptors, Keypoints: f.Keypoints,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.BestID, res.Accepted, res.Score
		}
	}

	start := time.Now()
	for i, path := range refs {
		if err := enroll(i+*idOffset, loadPNG(path)); err != nil {
			log.Fatalf("enrolling %s: %v", path, err)
		}
	}
	log.Printf("enrolled %d references in %s", len(refs), time.Since(start).Round(time.Millisecond))

	correct, rejected, mistraced := 0, 0, 0
	start = time.Now()
	for q, path := range queries {
		id, accepted, score := search(loadPNG(path))
		want := truth[q] + *idOffset
		switch {
		case accepted && id == want:
			correct++
		case !accepted:
			rejected++
			fmt.Printf("query %d: rejected (best %d, %d matches; truth %d)\n", q, id, score, want)
		default:
			mistraced++
			fmt.Printf("query %d: MISTRACED to %d (%d matches; truth %d)\n", q, id, score, want)
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("\ntop-1 accuracy: %d/%d = %.2f%%  (rejected %d, mistraced %d)\n",
		correct, len(queries), 100*float64(correct)/float64(len(queries)), rejected, mistraced)
	fmt.Printf("query wall time: %s total, %s per query (host extraction dominates)\n",
		elapsed.Round(time.Millisecond), (elapsed / time.Duration(len(queries))).Round(time.Millisecond))
}

func listPNGs(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".png") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out
}

func loadPNG(path string) *texid.Image {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	im, err := texture.DecodePNG(f)
	if err != nil {
		log.Fatalf("%s: %v", path, err)
	}
	return im
}

func readTruth(path string) map[int]int {
	b, err := os.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	truth := map[int]int{}
	for i, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		if i == 0 {
			continue // header
		}
		parts := strings.Split(line, ",")
		if len(parts) != 2 {
			continue
		}
		q, err1 := strconv.Atoi(strings.TrimSpace(parts[0]))
		r, err2 := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err1 == nil && err2 == nil {
			truth[q] = r
		}
	}
	return truth
}
