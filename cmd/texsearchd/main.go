// Command texsearchd runs the distributed texture search service of
// Sec. 8: N simulated GPU shard workers behind a RESTful HTTP API, with an
// optional embedded (or external) Redis-role kvstore for feature-record
// persistence.
//
//	texsearchd -listen :8080 -workers 14
//	texsearchd -listen :8080 -kvstore embedded          # persist + reload
//	texsearchd -listen :8080 -kvstore 127.0.0.1:6379    # external store
//
// API (see internal/cluster/api.go):
//
//	GET    /healthz
//	GET    /v1/stats
//	POST   /v1/textures       {"id": 1, "record_b64": "..."}
//	PUT    /v1/textures/{id}  {"record_b64": "..."}
//	DELETE /v1/textures/{id}
//	POST   /v1/search         {"record_b64": "..."}
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"texid/internal/cluster"
	"texid/internal/engine"
	"texid/internal/gpusim"
	"texid/internal/kvstore"
	"texid/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("texsearchd: ")

	listen := flag.String("listen", "127.0.0.1:8080", "HTTP listen address")
	workers := flag.Int("workers", 14, "number of shard GPU workers")
	device := flag.String("device", "p100", "simulated GPU model: p100, v100, v100tc")
	batch := flag.Int("batch", 256, "reference batch size")
	streams := flag.Int("streams", 8, "CUDA streams per worker")
	refFeatures := flag.Int("ref-features", 384, "features kept per reference image (m)")
	queryFeatures := flag.Int("query-features", 768, "features kept per query image (n)")
	hostCacheGB := flag.Int("host-cache-gb", 64, "host cache budget per worker, GB")
	store := flag.String("kvstore", "", `feature persistence: "", "embedded", or a host:port of a RESP server`)
	kvListen := flag.String("kvstore-listen", "127.0.0.1:0", "listen address for the embedded kvstore")
	kvAOF := flag.String("kvstore-aof", "", "append-only file for the embedded kvstore (survives restarts)")
	callDeadlineMS := flag.Float64("call-deadline-ms", 30e3, "per-attempt worker call deadline, virtual ms")
	callRetries := flag.Int("call-retries", 3, "max attempts per worker call (1 = no retries)")
	callBackoffMS := flag.Float64("call-backoff-ms", 5, "base retry backoff, virtual ms (doubles per attempt, jittered)")
	hedgeAfterMS := flag.Float64("hedge-after-ms", 0, "hedge straggler worker calls after this many virtual ms (0 = off)")
	minShards := flag.Int("min-shards", 1, "minimum shards that must answer before a search fails instead of degrading")
	maxBatch := flag.Int("max-batch", 16, "max concurrent /v1/search requests coalesced into one batched scatter pass (<= 1 disables)")
	batchWindowUS := flag.Int("batch-window-us", 200, "how long the first query of a batch waits for co-travellers, wall-clock µs")
	pruneC := flag.Int("prune-c", 0, "binary Hamming prefilter: candidate images reranked per shard (0 disables pruning)")
	pruneProbes := flag.Int("prune-probes", 0, "query descriptors probed by the prefilter scan (0 = default 64)")
	flag.Parse()

	cfg := engine.DefaultConfig()
	switch *device {
	case "p100":
		cfg.Spec = gpusim.TeslaP100()
	case "v100":
		cfg.Spec = gpusim.TeslaV100(false)
	case "v100tc":
		cfg.Spec = gpusim.TeslaV100(true)
	default:
		log.Fatalf("unknown device %q (want p100, v100, v100tc)", *device)
	}
	cfg.BatchSize = *batch
	cfg.Streams = *streams
	cfg.RefFeatures = *refFeatures
	cfg.QueryFeatures = *queryFeatures
	cfg.HostCacheBytes = int64(*hostCacheGB) << 30
	cfg.PruneC = *pruneC
	cfg.PruneProbes = *pruneProbes

	storeAddr := *store
	if storeAddr == "embedded" {
		db := kvstore.NewStore()
		if *kvAOF != "" {
			var err error
			db, err = kvstore.OpenAOF(*kvAOF)
			if err != nil {
				log.Fatalf("opening kvstore AOF: %v", err)
			}
			defer db.CloseAOF()
			log.Printf("embedded kvstore persists to %s (%d keys replayed)", *kvAOF, db.DBSize())
		}
		srv, err := kvstore.Serve(db, *kvListen)
		if err != nil {
			log.Fatalf("starting embedded kvstore: %v", err)
		}
		defer srv.Close()
		storeAddr = srv.Addr()
		log.Printf("embedded kvstore listening on %s", storeAddr)
	}

	c, err := cluster.New(cluster.Config{
		Workers:   *workers,
		Engine:    cfg,
		StoreAddr: storeAddr,
		Call: cluster.CallPolicy{
			DeadlineUS:   *callDeadlineMS * 1000,
			MaxAttempts:  *callRetries,
			BackoffUS:    *callBackoffMS * 1000,
			HedgeAfterUS: *hedgeAfterMS * 1000,
		},
		MinShards: *minShards,
		Serve: serve.Options{
			MaxBatch: *maxBatch,
			Window:   time.Duration(*batchWindowUS) * time.Microsecond,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	if storeAddr != "" {
		n, err := c.LoadFromStore()
		if err != nil {
			log.Fatalf("restoring from kvstore: %v", err)
		}
		if n > 0 {
			log.Printf("restored %d references from the kvstore", n)
		}
	}

	st := c.Stats()
	log.Printf("%d workers on %s; capacity %d references (%.0f GB hybrid cache)",
		st.Workers, cfg.Spec.Name, st.CapacityImages, st.CacheGB)
	if *maxBatch > 1 {
		log.Printf("micro-batching: coalescing up to %d concurrent searches within %dµs", *maxBatch, *batchWindowUS)
	}
	if *pruneC > 0 {
		log.Printf("candidate pruning: Hamming prefilter reranks top-%d images per shard", *pruneC)
	}
	log.Printf("serving REST API on http://%s (metrics at /metrics)", *listen)

	srv := &http.Server{
		Addr:              *listen,
		Handler:           logRequests(c.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("received %v, draining connections...", s)
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
	log.Print("bye")
}

// logRequests is a one-line-per-request access log.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		log.Printf("%s %s %s %s", r.RemoteAddr, r.Method, r.URL.Path, time.Since(start).Round(time.Microsecond))
	})
}
