// Command texgen generates the synthetic tea-brick texture dataset: seeded
// reference textures plus perturbed query re-captures with ground truth,
// written as grayscale PNGs (and optionally pre-extracted feature records).
//
//	texgen -out dataset -refs 50 -queries 20 -difficulty 0.6
//	texgen -out dataset -features          # also write .feat records
//
// The output layout is:
//
//	dataset/refs/ref_000042.png
//	dataset/queries/query_0007.png
//	dataset/truth.csv                      # query index -> reference index
//	dataset/refs/ref_000042.feat           # with -features
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"texid/internal/gpusim"
	"texid/internal/sift"
	"texid/internal/texture"
	"texid/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("texgen: ")

	out := flag.String("out", "dataset", "output directory")
	refs := flag.Int("refs", 20, "number of reference textures")
	queries := flag.Int("queries", 10, "number of query re-captures")
	size := flag.Int("size", 256, "image side in pixels")
	difficulty := flag.Float64("difficulty", 0.5, "query perturbation strength in [0,1]")
	seed := flag.Int64("seed", 1, "generator seed")
	features := flag.Bool("features", false, "also extract and write SIFT feature records (.feat)")
	maxFeatures := flag.Int("max-features", 768, "feature budget per image when -features is set")
	flag.Parse()

	params := texture.DefaultGenParams()
	params.Size = *size
	ds := texture.BuildDataset(*seed, *refs, *queries, *difficulty, params)

	refDir := filepath.Join(*out, "refs")
	queryDir := filepath.Join(*out, "queries")
	for _, dir := range []string{refDir, queryDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	cfg := sift.DefaultConfig()
	cfg.MaxFeatures = *maxFeatures

	// Extract features for the whole dataset up front (parallel across
	// images) so the write loop below is pure I/O.
	var refFeats, queryFeats []*sift.Features
	if *features {
		refFeats = sift.ExtractBatch(ds.Refs, cfg)
		queryFeats = sift.ExtractBatch(ds.Queries, cfg)
	}

	writeImage := func(path string, im *texture.Image, feats *sift.Features, id int64) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := texture.EncodePNG(f, im); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		if feats != nil {
			rec := &wire.FeatureRecord{
				ID:        id,
				Precision: gpusim.FP32,
				Scale:     1,
				Features:  feats.Descriptors,
				Keypoints: feats.Keypoints,
			}
			featPath := path[:len(path)-len(".png")] + ".feat"
			if err := os.WriteFile(featPath, wire.Encode(rec), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}

	for i, im := range ds.Refs {
		var feats *sift.Features
		if *features {
			feats = refFeats[i]
		}
		writeImage(filepath.Join(refDir, fmt.Sprintf("ref_%06d.png", i)), im, feats, int64(i))
	}
	for q, im := range ds.Queries {
		var feats *sift.Features
		if *features {
			feats = queryFeats[q]
		}
		writeImage(filepath.Join(queryDir, fmt.Sprintf("query_%04d.png", q)), im, feats, int64(q))
	}

	truth, err := os.Create(filepath.Join(*out, "truth.csv"))
	if err != nil {
		log.Fatal(err)
	}
	tw := bufio.NewWriter(truth)
	fmt.Fprintln(tw, "query,reference")
	for q, ref := range ds.Truth {
		fmt.Fprintf(tw, "%d,%d\n", q, ref)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := truth.Close(); err != nil {
		log.Fatal(err)
	}

	log.Printf("wrote %d references and %d queries to %s (difficulty %.2f, seed %d)",
		*refs, *queries, *out, *difficulty, *seed)
}
