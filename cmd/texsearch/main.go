// Command texsearch is the CLI client of the texsearchd REST API: it
// extracts SIFT features from PNG images locally and enrolls, searches,
// updates, or deletes textures.
//
//	texsearch -server http://127.0.0.1:8080 add -id 42 ref.png
//	texsearch search query.png
//	texsearch update -id 42 newref.png
//	texsearch delete -id 42
//	texsearch stats
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"

	"texid/internal/cluster"
	"texid/internal/gpusim"
	"texid/internal/sift"
	"texid/internal/texture"
	"texid/internal/wire"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("texsearch: ")

	server := flag.String("server", "http://127.0.0.1:8080", "texsearchd base URL")
	refFeatures := flag.Int("ref-features", 384, "features extracted for add/update (m)")
	queryFeatures := flag.Int("query-features", 768, "features extracted for search (n)")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	api := cluster.NewClient(*server)

	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "add", "update":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		id := fs.Int("id", 0, "texture id")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		if fs.NArg() != 1 || *id == 0 {
			log.Fatalf("usage: texsearch %s -id N image.png", cmd)
		}
		rec := extract(fs.Arg(0), int64(*id), *refFeatures)
		var err error
		if cmd == "add" {
			err = api.Add(rec)
		} else {
			err = api.Update(*id, rec)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%sed texture %d (%d features)\n", cmd, *id, rec.Features.Cols)

	case "search-batch":
		fs := flag.NewFlagSet("search-batch", flag.ExitOnError)
		concurrent := fs.Bool("concurrent", false,
			"issue the queries as parallel /v1/search requests so the server's micro-batching admission layer coalesces them (instead of one /v1/search/batch body)")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		paths := fs.Args()
		if len(paths) == 0 {
			log.Fatal("usage: texsearch search-batch [-concurrent] q1.png q2.png ...")
		}
		recs := make([]*wire.FeatureRecord, len(paths))
		for i, path := range paths {
			recs[i] = extract(path, 0, *queryFeatures)
		}
		var results []cluster.SearchResponse
		if *concurrent {
			results = make([]cluster.SearchResponse, len(recs))
			errs := make([]error, len(recs))
			var wg sync.WaitGroup
			for i := range recs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					results[i], errs[i] = api.Search(recs[i])
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					log.Fatalf("%s: %v", paths[i], err)
				}
			}
		} else {
			var err error
			results, err = api.SearchBatch(recs)
			if err != nil {
				log.Fatal(err)
			}
		}
		for i, res := range results {
			verdict := "no match"
			if res.Accepted {
				verdict = fmt.Sprintf("texture %d (%d matches)", res.BestID, res.Score)
			}
			fmt.Printf("%s: %s\n", paths[i], verdict)
		}
		if len(results) > 0 {
			fmt.Printf("batch latency %.2f ms simulated, %.0f comparisons/s aggregate\n",
				results[0].ElapsedUS/1000, results[0].Speed)
		}

	case "search":
		if len(args) != 1 {
			log.Fatal("usage: texsearch search query.png")
		}
		rec := extract(args[0], 0, *queryFeatures)
		res, err := api.Search(rec)
		if err != nil {
			log.Fatal(err)
		}
		if res.Accepted {
			fmt.Printf("MATCH: texture %d (%d verified matches)\n", res.BestID, res.Score)
		} else {
			fmt.Printf("NO MATCH (best candidate %d with %d matches, below threshold)\n", res.BestID, res.Score)
		}
		fmt.Printf("compared %d references in %.2f ms simulated GPU time (%.0f images/s)\n",
			res.Compared, res.ElapsedUS/1000, res.Speed)
		for i, r := range res.Ranked {
			fmt.Printf("  #%d texture %d: %d matches\n", i+1, r.RefID, r.Score)
		}

	case "delete":
		fs := flag.NewFlagSet("delete", flag.ExitOnError)
		id := fs.Int("id", 0, "texture id")
		if err := fs.Parse(args); err != nil {
			log.Fatal(err)
		}
		if *id == 0 {
			log.Fatal("usage: texsearch delete -id N")
		}
		if err := api.Delete(*id); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deleted texture %d\n", *id)

	case "stats":
		st, err := api.Stats()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("workers:    %d\n", st.Workers)
		fmt.Printf("references: %d\n", st.References)
		fmt.Printf("capacity:   %d images\n", st.CapacityImages)
		fmt.Printf("cache:      %.0f GB\n", st.CacheGB)

	case "health":
		if err := api.Health(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("ok")

	default:
		usage()
	}
}

// extract loads a PNG and extracts a feature record with the given budget.
func extract(path string, id int64, budget int) *wire.FeatureRecord {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	im, err := texture.DecodePNG(f)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sift.DefaultConfig()
	cfg.RootSIFT = true
	cfg.MaxFeatures = budget
	feats := sift.Extract(im, cfg)
	if feats.Count() == 0 {
		log.Fatalf("%s: no features detected — not enough texture", path)
	}
	return &wire.FeatureRecord{
		ID:        id,
		Precision: gpusim.FP32,
		Scale:     1,
		Features:  feats.Descriptors,
		Keypoints: feats.Keypoints,
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: texsearch [-server URL] <command> [args]

commands:
  add -id N image.png       enroll a reference texture
  update -id N image.png    replace a reference texture
  search query.png          one-to-many identification
  search-batch [-concurrent] q1.png ...
                            batched identification (higher throughput);
                            -concurrent sends parallel single searches so
                            the server coalesces them
  delete -id N              remove a reference
  stats                     cluster statistics
  health                    liveness check`)
	os.Exit(2)
}
