package texid

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// goldenSnapshot builds a deterministic snapshot with a known content
// census, used as the substrate for corruption tests.
func goldenSnapshot(t *testing.T) ([]byte, int) {
	t.Helper()
	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	const refs = 3
	for id := 1; id <= refs; id++ {
		if err := sys.EnrollImage(id, smallTexture(int64(id*11))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), refs
}

// corruptionOffsets yields every offset in the structural head of the
// stream (header, first length prefix, first record header) and a strided
// sample of the bulk payload — exhaustive where parsing decisions live,
// sampled where only data lives, bounded runtime either way.
func corruptionOffsets(n int) []int {
	var offs []int
	for off := 0; off < n; off++ {
		if off < 64 || off%23 == 0 || off >= n-8 {
			offs = append(offs, off)
		}
	}
	return offs
}

// TestSnapshotTruncationEveryOffset cuts the golden snapshot at every
// structural byte offset (and a sample of payload offsets). Load must
// never panic; it either reports a clean error or (when the cut lands
// exactly on a record boundary after the terminator-less tail) restores a
// strict prefix of the records.
func TestSnapshotTruncationEveryOffset(t *testing.T) {
	golden, refs := goldenSnapshot(t)
	for _, cut := range corruptionOffsets(len(golden)) {
		sys, err := Open(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		n, err := sys.Load(bytes.NewReader(golden[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(golden))
		}
		if n > refs {
			t.Fatalf("truncation at %d restored %d > %d records", cut, n, refs)
		}
	}
}

// TestSnapshotBitFlips flips one byte at a time across the stream. Every
// flip must leave Load panic-free: either a clean error or a successful
// load (flips inside feature payloads change values, not structure).
func TestSnapshotBitFlips(t *testing.T) {
	golden, refs := goldenSnapshot(t)
	for _, off := range corruptionOffsets(len(golden)) {
		mut := bytes.Clone(golden)
		mut[off] ^= 0xff
		sys, err := Open(smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		n, err := sys.Load(bytes.NewReader(mut))
		if err == nil && n != refs {
			t.Fatalf("flip at %d silently dropped records: restored %d, want %d", off, n, refs)
		}
	}
}

// TestSnapshotHostileLength hand-crafts a snapshot whose record length
// prefix claims a gigabyte: Load must fail on the (absent) payload without
// committing a gigabyte of memory first.
func TestSnapshotHostileLength(t *testing.T) {
	var buf bytes.Buffer
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], snapshotMagic)
	hdr[4] = snapshotVersion
	buf.Write(hdr[:])
	var sz [4]byte
	binary.LittleEndian.PutUint32(sz[:], 1<<30) // at the sanity cap
	buf.Write(sz[:])
	buf.WriteString("tiny")

	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("hostile length: err = %v, want ErrBadSnapshot", err)
	}

	// One past the cap is rejected on the prefix itself.
	binary.LittleEndian.PutUint32(buf.Bytes()[5:9], 1<<30+1)
	if _, err := sys.Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("oversized length: err = %v, want ErrBadSnapshot", err)
	}
}

// TestSnapshotGoldenRoundTripStable pins the byte stability of the format:
// saving the same index twice yields identical bytes, and a load of the
// golden bytes re-saves to the same bytes again (the format has no hidden
// nondeterminism — map ordering, timestamps — to drift on).
func TestSnapshotGoldenRoundTripStable(t *testing.T) {
	golden, refs := goldenSnapshot(t)
	again, _ := goldenSnapshot(t)
	if !bytes.Equal(golden, again) {
		t.Fatal("identical enrollments produced different snapshots")
	}

	sys, err := Open(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.Load(bytes.NewReader(golden))
	if err != nil || n != refs {
		t.Fatalf("golden load: n=%d err=%v", n, err)
	}
	var resaved bytes.Buffer
	if err := sys.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(golden, resaved.Bytes()) {
		t.Fatal("load+save did not reproduce the golden bytes")
	}
}
