package texid

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its experiment through internal/bench (the
// same code path as cmd/texbench) and reports the experiment's headline
// metric via b.ReportMetric, so `go test -bench=.` doubles as a compact
// reproduction run. Accuracy experiments use reduced dataset sizes here;
// run `texbench` with larger -refs/-queries/-feature-scale for the full
// picture.

import (
	"strconv"
	"strings"
	"testing"

	"texid/internal/bench"
)

// benchOpts returns experiment options sized for the benchmark harness.
func benchOpts() bench.Options {
	opts := bench.DefaultOptions()
	opts.Refs = 6
	opts.Queries = 8
	opts.FeatureScale = 8
	opts.MinMatches = 6
	opts.SystemRefs = 200_000
	return opts
}

// lastFloat extracts the last numeric cell of a row (stripping % and x).
func lastFloat(cells []string) float64 {
	for i := len(cells) - 1; i >= 0; i-- {
		s := strings.TrimSuffix(strings.TrimSuffix(cells[i], "%"), "x")
		if v, err := strconv.ParseFloat(s, 64); err == nil {
			return v
		}
	}
	return 0
}

// findRow returns the first row whose first cell contains key.
func findRow(t *bench.Table, key string) []string {
	for _, row := range t.Rows {
		if strings.Contains(row[0], key) {
			return row
		}
	}
	return nil
}

func BenchmarkTable1(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table1(benchOpts())
	}
	if row := findRow(tb, "Speed"); row != nil {
		// Columns: baseline, Garcia, ours, ours+FP16.
		base, _ := strconv.ParseFloat(row[1], 64)
		ours, _ := strconv.ParseFloat(row[3], 64)
		b.ReportMetric(base, "baseline-img/s")
		b.ReportMetric(ours, "top2-img/s")
		b.ReportMetric(ours/base, "speedup")
	}
}

func BenchmarkTable2(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table2(benchOpts())
	}
	// Report the compression error at the production scale factor 2^-7.
	for _, row := range tb.Rows {
		if row[1] == "2^-7" && row[2] != "overflow" {
			v, _ := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
			b.ReportMetric(v, "comp-err-%")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table3(benchOpts())
	}
	if row := findRow(tb, "Speed"); row != nil {
		b.ReportMetric(lastFloat(row), "batched-img/s")
	}
}

func BenchmarkTable4(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table4(benchOpts())
	}
	for _, row := range tb.Rows {
		if strings.Contains(row[0], "P100") {
			v, _ := strconv.ParseFloat(strings.TrimSuffix(row[4], "%"), 64)
			b.ReportMetric(v, "p100-eff-%")
		}
	}
}

func BenchmarkTable5(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table5(benchOpts())
	}
	gpu := lastFloat(findRow(tb, "GPU memory"))
	pinned := lastFloat(findRow(tb, "w/ pinned"))
	b.ReportMetric(gpu, "gpu-img/s")
	b.ReportMetric(pinned, "hybrid-img/s")
}

func BenchmarkTable6(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table6(benchOpts())
	}
	// Report batch-512 speeds at 1 and 8 streams.
	var s1, s8 float64
	for _, row := range tb.Rows {
		if row[0] == "512" && row[1] == "1" {
			s1, _ = strconv.ParseFloat(row[3], 64)
		}
		if row[0] == "512" && row[1] == "8" {
			s8, _ = strconv.ParseFloat(row[3], 64)
		}
	}
	b.ReportMetric(s1, "1stream-img/s")
	b.ReportMetric(s8, "8stream-img/s")
}

func BenchmarkTable7(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Table7(benchOpts())
	}
	// Speed at the paper's operating point m=384, n=768.
	for _, row := range tb.Rows {
		if row[0] == "384" && row[1] == "768" {
			b.ReportMetric(lastFloat(row), "m384-img/s")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Fig1(benchOpts())
	}
	last := tb.Rows[len(tb.Rows)-1]
	sx, _ := strconv.ParseFloat(strings.TrimSuffix(last[3], "x"), 64)
	cx, _ := strconv.ParseFloat(strings.TrimSuffix(last[4], "x"), 64)
	b.ReportMetric(sx, "speedup-x")
	b.ReportMetric(cx, "capacity-x")
}

func BenchmarkFig4(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.Fig4(benchOpts())
	}
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	p1, _ := strconv.ParseFloat(first[1], 64)
	p1024, _ := strconv.ParseFloat(last[1], 64)
	b.ReportMetric(p1024/p1, "batch-speedup")
}

func BenchmarkSystem(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.System(benchOpts())
	}
	if row := findRow(tb, "Table-7 basis"); row != nil {
		v, _ := strconv.ParseFloat(row[1], 64)
		b.ReportMetric(v, "aggregate-img/s")
	}
}

// Extension and ablation experiments (see DESIGN.md).

func BenchmarkQueryBatch(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.QueryBatch(benchOpts())
	}
	first := tb.Rows[0]
	last := tb.Rows[len(tb.Rows)-1]
	tp1, _ := strconv.ParseFloat(first[1], 64)
	tpN, _ := strconv.ParseFloat(last[1], 64)
	b.ReportMetric(tpN/tp1, "throughput-gain")
}

func BenchmarkAblateSort(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.AblateSort(benchOpts())
	}
	b.ReportMetric(lastFloat(tb.Rows[0]), "batch1-advantage-x")
}

func BenchmarkCBIR(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.CBIR(benchOpts())
	}
	ours := lastFloat(tb.Rows[0])
	pq := lastFloat(tb.Rows[2])
	b.ReportMetric(ours, "per-image-acc-%")
	b.ReportMetric(pq, "pq-acc-%")
}

func BenchmarkAblateDescriptor(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.AblateDescriptor(benchOpts())
	}
	b.ReportMetric(lastFloat(tb.Rows[1]), "surf-img/s")
}

func BenchmarkVerifyCost(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.VerifyCost(benchOpts())
	}
	v, _ := strconv.ParseFloat(strings.TrimSuffix(tb.Rows[0][4], "%"), 64)
	b.ReportMetric(v, "verify-match-share-%")
}

func BenchmarkDeviceProjection(b *testing.B) {
	var tb *bench.Table
	for i := 0; i < b.N; i++ {
		tb = bench.DeviceProjection(benchOpts())
	}
	a100, _ := strconv.ParseFloat(tb.Rows[3][1], 64)
	b.ReportMetric(a100, "a100-img/s")
}
